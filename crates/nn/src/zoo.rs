//! The model zoo: trained, outlier-injected models standing in for the
//! paper's Llama checkpoints.
//!
//! Four sizes mirror Llama 7B/13B/30B/65B (scaled down ~4 orders of
//! magnitude; see DESIGN.md), plus a GQA variant ("Llama-2-like") and an MoE
//! variant ("Mixtral-like") for the Table 4 generality study. Models are
//! trained once on a blend of the three corpora and cached on disk
//! (`target/model-cache/` by default, override with `ATOM_MODEL_CACHE`), so
//! every example/bench binary reuses the same checkpoints.

use crate::config::ModelConfig;
use crate::linear::DenseLinear;
use crate::model::LlamaModel;
use crate::serialize::{load_model, save_model};
use crate::train::{train, TrainSpec};
use crate::transform::{inject_outliers, OutlierSpec};
use atom_data::{Corpus, CorpusStyle, Tokenizer};
use std::path::PathBuf;

/// Identity of a zoo model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooId {
    /// Smallest size; stands in for Llama-7B.
    Tiny,
    /// Stands in for Llama-13B.
    Small,
    /// Stands in for Llama-30B.
    Base,
    /// Largest size; stands in for Llama-65B.
    Large,
    /// GQA variant; stands in for Llama-2.
    Gqa,
    /// Soft-MoE variant; stands in for Mixtral.
    Moe,
}

impl ZooId {
    /// All models.
    pub fn all() -> [ZooId; 6] {
        [
            ZooId::Tiny,
            ZooId::Small,
            ZooId::Base,
            ZooId::Large,
            ZooId::Gqa,
            ZooId::Moe,
        ]
    }

    /// The four Llama-1-style sizes used in Tables 1/2 and Fig. 2.
    pub fn sizes() -> [ZooId; 4] {
        [ZooId::Tiny, ZooId::Small, ZooId::Base, ZooId::Large]
    }

    /// Display label; the `*` marks the scaled-down stand-in.
    pub fn label(self) -> &'static str {
        match self {
            ZooId::Tiny => "7B*",
            ZooId::Small => "13B*",
            ZooId::Base => "30B*",
            ZooId::Large => "65B*",
            ZooId::Gqa => "L2-7B*",
            ZooId::Moe => "8x7B*",
        }
    }

    /// File stem used in the on-disk cache.
    fn stem(self) -> &'static str {
        match self {
            ZooId::Tiny => "tiny",
            ZooId::Small => "small",
            ZooId::Base => "base",
            ZooId::Large => "large",
            ZooId::Gqa => "gqa",
            ZooId::Moe => "moe",
        }
    }

    /// Architecture of this zoo model.
    pub fn config(self) -> ModelConfig {
        let base = ModelConfig {
            vocab: 96,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            max_seq_len: 512,
            experts: 1,
            ..ModelConfig::default()
        };
        match self {
            ZooId::Tiny => ModelConfig {
                dim: 48,
                layers: 2,
                heads: 4,
                kv_heads: 4,
                ffn_dim: 128,
                ..base
            },
            ZooId::Small => ModelConfig {
                dim: 64,
                layers: 3,
                heads: 4,
                kv_heads: 4,
                ffn_dim: 192,
                ..base
            },
            ZooId::Base => ModelConfig {
                dim: 96,
                layers: 4,
                heads: 6,
                kv_heads: 6,
                ffn_dim: 256,
                ..base
            },
            ZooId::Large => ModelConfig {
                dim: 128,
                layers: 4,
                heads: 8,
                kv_heads: 8,
                ffn_dim: 384,
                ..base
            },
            ZooId::Gqa => ModelConfig {
                dim: 64,
                layers: 3,
                heads: 8,
                kv_heads: 2,
                ffn_dim: 192,
                ..base
            },
            ZooId::Moe => ModelConfig {
                dim: 48,
                layers: 2,
                heads: 4,
                kv_heads: 4,
                ffn_dim: 96,
                experts: 4,
                ..base
            },
        }
    }

    /// Training budget for this model: roughly 2-3 epochs over the blended
    /// training corpus, enough for the models to absorb the lexicon facts
    /// the zero-shot tasks quiz.
    pub fn train_spec(self) -> TrainSpec {
        let steps = match self {
            ZooId::Tiny => 500,
            ZooId::Small => 600,
            ZooId::Base => 700,
            ZooId::Large => 700,
            ZooId::Gqa => 500,
            ZooId::Moe => 500,
        };
        TrainSpec {
            steps,
            batch: 4,
            seq_len: 96,
            lr: 3e-3,
            warmup: 20,
            weight_decay: 0.01,
            clip: 1.0,
            seed: 0x5EED ^ self.stem().len() as u64 ^ (steps as u64) << 16,
        }
    }

    /// Outlier-injection parameters applied after training.
    pub fn outlier_spec(self) -> OutlierSpec {
        OutlierSpec {
            channels_per_site: 4,
            magnitude: 40.0,
            value_magnitude: 4.0,
            spread: 0.35,
            seed: 0xA70,
        }
    }
}

impl std::fmt::Display for ZooId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Size of each training/eval corpus in characters.
const CORPUS_CHARS: usize = 40_000;
/// Seed for the shared corpora.
const CORPUS_SEED: u64 = 2024;

/// The three evaluation corpora (generated deterministically, shared by all
/// models and experiments).
pub fn corpora() -> [Corpus; 3] {
    [
        Corpus::generate(CorpusStyle::Wiki, CORPUS_CHARS, CORPUS_SEED),
        Corpus::generate(CorpusStyle::Ptb, CORPUS_CHARS, CORPUS_SEED + 1),
        Corpus::generate(CorpusStyle::C4, CORPUS_CHARS, CORPUS_SEED + 2),
    ]
}

/// Tokenized training blend: the train split of all three corpora.
pub fn training_tokens() -> Vec<u16> {
    let tok = Tokenizer::new();
    let mut out = Vec::new();
    for corpus in corpora() {
        let (train, _) = corpus.split(0.9);
        out.extend(tok.encode(train));
    }
    out
}

/// Tokenized held-out validation split for one corpus style.
pub fn validation_tokens(style: CorpusStyle) -> Vec<u16> {
    let tok = Tokenizer::new();
    let corpus = corpora()
        .into_iter()
        .find(|c| c.style() == style)
        .expect("style exists");
    let (_, valid) = corpus.split(0.9);
    tok.encode(valid)
}

/// Tokenized calibration sentences (paper §5.1: 128 random sentences),
/// drawn from the wiki corpus train split.
pub fn calibration_sequences(n: usize) -> Vec<Vec<u16>> {
    let tok = Tokenizer::new();
    let corpus = Corpus::generate(CorpusStyle::Wiki, CORPUS_CHARS, CORPUS_SEED);
    corpus
        .calibration_sentences(n, 0xCAFE)
        .into_iter()
        .map(|s| tok.encode(&s))
        .collect()
}

/// Directory trained models are cached in.
pub fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ATOM_MODEL_CACHE") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/model-cache")
}

/// Returns the trained, outlier-injected model for `id`, training and
/// caching it on first use.
///
/// Training the full zoo takes a few minutes on one core; subsequent calls
/// load from the cache in milliseconds.
///
/// # Panics
///
/// Panics if training diverges (non-finite loss) or the cache directory is
/// not writable.
pub fn trained(id: ZooId) -> LlamaModel<DenseLinear> {
    let path = cache_dir().join(format!("atom-{}.bin", id.stem()));
    if let Ok(model) = load_model(&path) {
        if model.config() == &id.config() {
            return model;
        }
        // Config drifted (e.g. zoo definition changed): retrain.
    }
    let tokens = training_tokens();
    let spec = id.train_spec();
    let (mut model, metrics) = train(id.config(), &tokens, spec);
    let final_loss = metrics.tail_loss(10);
    assert!(
        final_loss.is_finite(),
        "training of {id} diverged (loss {final_loss})"
    );
    inject_outliers(&mut model, &id.outlier_spec());
    save_model(&model, &path).expect("writing model cache");
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate_and_scale() {
        let mut last = 0;
        for id in ZooId::sizes() {
            let c = id.config();
            c.validate().unwrap();
            assert!(c.param_count() > last, "{id} not larger than predecessor");
            last = c.param_count();
        }
        ZooId::Gqa.config().validate().unwrap();
        ZooId::Moe.config().validate().unwrap();
        assert_eq!(ZooId::Gqa.config().kv_heads, 2);
        assert_eq!(ZooId::Moe.config().experts, 4);
    }

    #[test]
    fn group_quant_dims_divisible_by_16() {
        // The paper's group size 128 scales to 16 at our dims; every linear
        // input dimension must be divisible.
        for id in ZooId::all() {
            let c = id.config();
            assert_eq!(c.dim % 16, 0, "{id} dim");
            assert_eq!(c.ffn_dim % 16, 0, "{id} ffn_dim");
        }
    }

    #[test]
    fn training_tokens_are_substantial() {
        let toks = training_tokens();
        assert!(toks.len() > 100_000);
        assert!(toks.iter().all(|&t| (t as usize) < 96));
    }

    #[test]
    fn validation_splits_are_disjoint_styles() {
        let w = validation_tokens(CorpusStyle::Wiki);
        let p = validation_tokens(CorpusStyle::Ptb);
        assert!(w.len() > 2_000);
        assert!(p.len() > 2_000);
        assert_ne!(w, p);
    }

    #[test]
    fn calibration_sequences_shape() {
        let seqs = calibration_sequences(8);
        assert_eq!(seqs.len(), 8);
        assert!(seqs.iter().all(|s| s.len() > 8));
    }
}
