//! Llama-family decoder, generic over linear-layer precision.
//!
//! The same model code runs the FP32 reference and Atom's quantized variant:
//! `LlamaModel<DenseLinear>` is the baseline, and the `atom` crate
//! instantiates `LlamaModel<QuantizedLinear>` after calibration. Forward
//! hooks ([`ForwardObserver`]) expose every linear layer's input activations,
//! which is how calibration collects the channel statistics used for outlier
//! identification and reordering (paper §4.1, §5.1).

use crate::config::ModelConfig;
use crate::kv::KvStore;
use crate::linear::{DenseLinear, LinearLayer};
use atom_parallel::Pool;
use atom_telemetry::{names, span, Telemetry};
use atom_tensor::cast;
use atom_tensor::{ops, Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Which projection a linear layer implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proj {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    O,
    /// SwiGLU gate projection.
    Gate,
    /// SwiGLU up projection.
    Up,
    /// SwiGLU down projection.
    Down,
    /// MoE router.
    Router,
}

impl Proj {
    /// All projections in forward order.
    pub fn all() -> [Proj; 8] {
        [
            Proj::Q,
            Proj::K,
            Proj::V,
            Proj::O,
            Proj::Gate,
            Proj::Up,
            Proj::Down,
            Proj::Router,
        ]
    }
}

/// Stable identity of one linear layer inside a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinearId {
    /// Transformer block index.
    pub layer: usize,
    /// Projection kind.
    pub proj: Proj,
    /// Expert index for MoE FFN projections (0 for dense models and for
    /// non-FFN projections).
    pub expert: usize,
}

impl LinearId {
    /// Convenience constructor for non-MoE layers.
    pub fn new(layer: usize, proj: Proj) -> Self {
        LinearId {
            layer,
            proj,
            expert: 0,
        }
    }
}

impl std::fmt::Display for LinearId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}.{:?}", self.layer, self.proj)?;
        if self.expert != 0 {
            write!(f, ".e{}", self.expert)?;
        }
        Ok(())
    }
}

/// Hook receiving every linear layer's input activation during a forward
/// pass. Used by calibration; the default [`NoopObserver`] costs nothing.
pub trait ForwardObserver {
    /// Called with the activation matrix that is about to enter linear `id`.
    fn observe(&mut self, id: LinearId, input: &Matrix);
}

/// Observer that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ForwardObserver for NoopObserver {
    fn observe(&mut self, _id: LinearId, _input: &Matrix) {}
}

/// Grouped-query attention block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attention<L> {
    /// Query projection (`dim -> dim`).
    pub wq: L,
    /// Key projection (`dim -> kv_dim`).
    pub wk: L,
    /// Value projection (`dim -> kv_dim`).
    pub wv: L,
    /// Output projection (`dim -> dim`).
    pub wo: L,
}

/// SwiGLU MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp<L> {
    /// Gate projection (`dim -> ffn_dim`).
    pub gate: L,
    /// Up projection (`dim -> ffn_dim`).
    pub up: L,
    /// Down projection (`ffn_dim -> dim`).
    pub down: L,
}

impl<L: LinearLayer> Mlp<L> {
    fn forward(&self, x: &Matrix, layer: usize, expert: usize, obs: &mut dyn ForwardObserver) -> Matrix {
        let gid = LinearId {
            layer,
            proj: Proj::Gate,
            expert,
        };
        obs.observe(gid, x);
        let g = self.gate.forward(x).map(ops::silu);
        let uid = LinearId {
            layer,
            proj: Proj::Up,
            expert,
        };
        obs.observe(uid, x);
        let u = self.up.forward(x);
        let h = g.hadamard(&u);
        let did = LinearId {
            layer,
            proj: Proj::Down,
            expert,
        };
        obs.observe(did, &h);
        self.down.forward(&h)
    }
}

/// Feed-forward section: a dense SwiGLU MLP or a softly routed MoE.
///
/// The MoE uses *soft routing* (every expert runs, outputs are mixed by the
/// router softmax) in both training and inference so the quantized model
/// computes the same function it was trained as. Atom's MoE finding — shared
/// reorder indices across experts suffice (paper §6, footnote 4) — is about
/// per-expert FFN weight quantization and is fully exercised by this layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FeedForward<L> {
    /// Standard dense MLP.
    Dense(Mlp<L>),
    /// Mixture of experts with a linear router.
    Moe {
        /// Router (`dim -> experts`).
        router: L,
        /// Expert MLPs.
        experts: Vec<Mlp<L>>,
    },
}

impl<L: LinearLayer> FeedForward<L> {
    fn forward(&self, x: &Matrix, layer: usize, obs: &mut dyn ForwardObserver) -> Matrix {
        match self {
            FeedForward::Dense(mlp) => mlp.forward(x, layer, 0, obs),
            FeedForward::Moe { router, experts } => {
                obs.observe(LinearId::new(layer, Proj::Router), x);
                let gates = ops::softmax_rows(&router.forward(x));
                let mut out = Matrix::zeros(x.rows(), x.cols());
                for (e, expert) in experts.iter().enumerate() {
                    let y = expert.forward(x, layer, e, obs);
                    for r in 0..x.rows() {
                        let g = gates[(r, e)];
                        let dst = out.row_mut(r);
                        for (d, s) in dst.iter_mut().zip(y.row(r)) {
                            *d += g * s;
                        }
                    }
                }
                out
            }
        }
    }
}

/// One transformer block: pre-norm attention and pre-norm feed-forward, both
/// with residual connections.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block<L> {
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// Attention projections.
    pub attn: Attention<L>,
    /// RMSNorm gain before the feed-forward.
    pub ffn_norm: Vec<f32>,
    /// Feed-forward section.
    pub ffn: FeedForward<L>,
}

/// Decoder-only Llama-style model, generic over linear precision `L`.
///
/// # Example
///
/// ```
/// use atom_nn::{config::ModelConfig, kv::Fp32KvCache, model::LlamaModel};
///
/// let config = ModelConfig { layers: 2, ..ModelConfig::default() };
/// let model = LlamaModel::random_init(config, 0);
/// let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
/// let logits = model.forward(&[1, 2, 3], &mut cache);
/// assert_eq!(logits.shape(), (3, config.vocab));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlamaModel<L> {
    config: ModelConfig,
    /// Token embedding table (`vocab x dim`).
    pub embed: Matrix,
    /// Transformer blocks.
    pub blocks: Vec<Block<L>>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// Output head weight (`vocab x dim`). Kept in full precision, as the
    /// paper quantizes the *dense layers* of the blocks.
    pub head: Matrix,
}

impl<L> LlamaModel<L> {
    /// Assembles a model from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree with `config` on basic shapes.
    pub fn from_parts(
        config: ModelConfig,
        embed: Matrix,
        blocks: Vec<Block<L>>,
        final_norm: Vec<f32>,
        head: Matrix,
    ) -> Self {
        assert_eq!(embed.shape(), (config.vocab, config.dim), "embed shape");
        assert_eq!(head.shape(), (config.vocab, config.dim), "head shape");
        assert_eq!(blocks.len(), config.layers, "block count");
        assert_eq!(final_norm.len(), config.dim, "final norm width");
        LlamaModel {
            config,
            embed,
            blocks,
            final_norm,
            head,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Consumes the model and applies `f` to every linear layer, producing a
    /// model with a different linear precision (this is how the `atom` crate
    /// builds the quantized model).
    pub fn map_linears<M>(self, mut f: impl FnMut(LinearId, L) -> M) -> LlamaModel<M> {
        let config = self.config;
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(l, b)| Block {
                attn_norm: b.attn_norm,
                attn: Attention {
                    wq: f(LinearId::new(l, Proj::Q), b.attn.wq),
                    wk: f(LinearId::new(l, Proj::K), b.attn.wk),
                    wv: f(LinearId::new(l, Proj::V), b.attn.wv),
                    wo: f(LinearId::new(l, Proj::O), b.attn.wo),
                },
                ffn_norm: b.ffn_norm,
                ffn: match b.ffn {
                    FeedForward::Dense(mlp) => FeedForward::Dense(Mlp {
                        gate: f(
                            LinearId {
                                layer: l,
                                proj: Proj::Gate,
                                expert: 0,
                            },
                            mlp.gate,
                        ),
                        up: f(
                            LinearId {
                                layer: l,
                                proj: Proj::Up,
                                expert: 0,
                            },
                            mlp.up,
                        ),
                        down: f(
                            LinearId {
                                layer: l,
                                proj: Proj::Down,
                                expert: 0,
                            },
                            mlp.down,
                        ),
                    }),
                    FeedForward::Moe { router, experts } => FeedForward::Moe {
                        router: f(LinearId::new(l, Proj::Router), router),
                        experts: experts
                            .into_iter()
                            .enumerate()
                            .map(|(e, mlp)| Mlp {
                                gate: f(
                                    LinearId {
                                        layer: l,
                                        proj: Proj::Gate,
                                        expert: e,
                                    },
                                    mlp.gate,
                                ),
                                up: f(
                                    LinearId {
                                        layer: l,
                                        proj: Proj::Up,
                                        expert: e,
                                    },
                                    mlp.up,
                                ),
                                down: f(
                                    LinearId {
                                        layer: l,
                                        proj: Proj::Down,
                                        expert: e,
                                    },
                                    mlp.down,
                                ),
                            })
                            .collect(),
                    },
                },
            })
            .collect();
        LlamaModel {
            config,
            embed: self.embed,
            blocks,
            final_norm: self.final_norm,
            head: self.head,
        }
    }

    /// Visits every linear layer with its identity.
    pub fn visit_linears(&self, mut f: impl FnMut(LinearId, &L)) {
        for (l, b) in self.blocks.iter().enumerate() {
            f(LinearId::new(l, Proj::Q), &b.attn.wq);
            f(LinearId::new(l, Proj::K), &b.attn.wk);
            f(LinearId::new(l, Proj::V), &b.attn.wv);
            f(LinearId::new(l, Proj::O), &b.attn.wo);
            match &b.ffn {
                FeedForward::Dense(mlp) => {
                    f(
                        LinearId {
                            layer: l,
                            proj: Proj::Gate,
                            expert: 0,
                        },
                        &mlp.gate,
                    );
                    f(
                        LinearId {
                            layer: l,
                            proj: Proj::Up,
                            expert: 0,
                        },
                        &mlp.up,
                    );
                    f(
                        LinearId {
                            layer: l,
                            proj: Proj::Down,
                            expert: 0,
                        },
                        &mlp.down,
                    );
                }
                FeedForward::Moe { router, experts } => {
                    f(LinearId::new(l, Proj::Router), router);
                    for (e, mlp) in experts.iter().enumerate() {
                        f(
                            LinearId {
                                layer: l,
                                proj: Proj::Gate,
                                expert: e,
                            },
                            &mlp.gate,
                        );
                        f(
                            LinearId {
                                layer: l,
                                proj: Proj::Up,
                                expert: e,
                            },
                            &mlp.up,
                        );
                        f(
                            LinearId {
                                layer: l,
                                proj: Proj::Down,
                                expert: e,
                            },
                            &mlp.down,
                        );
                    }
                }
            }
        }
    }
}

impl LlamaModel<DenseLinear> {
    /// Builds a model with Kaiming-initialized random weights (untrained;
    /// used by unit tests and kernel-parity checks).
    pub fn random_init(config: ModelConfig, seed: u64) -> Self {
        config.validate().expect("invalid model config");
        let mut rng = SeededRng::new(seed ^ 0x11AA_4A4A);
        let dim = config.dim;
        let kv_dim = config.kv_dim();
        let blocks = (0..config.layers)
            .map(|_| {
                let mlp = |rng: &mut SeededRng| Mlp {
                    gate: DenseLinear::new(rng.kaiming_matrix(config.ffn_dim, dim, 1.0)),
                    up: DenseLinear::new(rng.kaiming_matrix(config.ffn_dim, dim, 1.0)),
                    down: DenseLinear::new(rng.kaiming_matrix(dim, config.ffn_dim, 1.0)),
                };
                Block {
                    attn_norm: vec![1.0; dim],
                    attn: Attention {
                        wq: DenseLinear::new(rng.kaiming_matrix(dim, dim, 1.0)),
                        wk: DenseLinear::new(rng.kaiming_matrix(kv_dim, dim, 1.0)),
                        wv: DenseLinear::new(rng.kaiming_matrix(kv_dim, dim, 1.0)),
                        wo: DenseLinear::new(rng.kaiming_matrix(dim, dim, 1.0)),
                    },
                    ffn_norm: vec![1.0; dim],
                    ffn: if config.experts > 1 {
                        FeedForward::Moe {
                            router: DenseLinear::new(rng.kaiming_matrix(config.experts, dim, 1.0)),
                            experts: (0..config.experts).map(|_| mlp(&mut rng)).collect(),
                        }
                    } else {
                        FeedForward::Dense(mlp(&mut rng))
                    },
                }
            })
            .collect();
        LlamaModel {
            config,
            embed: rng.normal_matrix(config.vocab, dim, 0.0, 0.02),
            blocks,
            final_norm: vec![1.0; dim],
            head: rng.kaiming_matrix(config.vocab, dim, 1.0),
        }
    }
}

impl<L: LinearLayer> LlamaModel<L> {
    /// Forward pass over `tokens`, appending their K/V to `cache` and
    /// returning `tokens.len() x vocab` logits.
    pub fn forward(&self, tokens: &[u16], cache: &mut dyn KvStore) -> Matrix {
        self.forward_observed(tokens, cache, &mut NoopObserver)
    }

    /// Forward pass with a calibration observer hooked before every linear.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-vocabulary ids.
    pub fn forward_observed(
        &self,
        tokens: &[u16],
        cache: &mut dyn KvStore,
        obs: &mut dyn ForwardObserver,
    ) -> Matrix {
        assert!(!tokens.is_empty(), "forward of empty token slice");
        let _timer = Telemetry::global().timer(names::MODEL_FORWARD_WALL_NS);
        let _span = span!(names::SPAN_MODEL_FORWARD, tokens = tokens.len());
        let c = &self.config;
        let start = cache.len(0);
        let positions: Vec<usize> = (start..start + tokens.len()).collect();

        // Embed.
        let mut x = Matrix::zeros(tokens.len(), c.dim);
        for (r, &t) in tokens.iter().enumerate() {
            assert!((t as usize) < c.vocab, "token {t} out of vocabulary");
            x.row_mut(r).copy_from_slice(self.embed.row(t as usize));
        }

        for (l, block) in self.blocks.iter().enumerate() {
            // Attention with pre-norm and residual.
            let normed = ops::rmsnorm_rows(&x, &block.attn_norm, c.norm_eps);
            let attn_out = self.attention(block, &normed, l, &positions, cache, obs);
            x = x.add(&attn_out);

            // Feed-forward with pre-norm and residual.
            let normed = ops::rmsnorm_rows(&x, &block.ffn_norm, c.norm_eps);
            let ffn_out = block.ffn.forward(&normed, l, obs);
            x = x.add(&ffn_out);
        }

        let x = ops::rmsnorm_rows(&x, &self.final_norm, c.norm_eps);
        x.matmul_nt(&self.head)
    }

    fn attention(
        &self,
        block: &Block<L>,
        x: &Matrix,
        layer: usize,
        positions: &[usize],
        cache: &mut dyn KvStore,
        obs: &mut dyn ForwardObserver,
    ) -> Matrix {
        let c = &self.config;
        let hd = c.head_dim();

        obs.observe(LinearId::new(layer, Proj::Q), x);
        let mut q = block.attn.wq.forward(x);
        obs.observe(LinearId::new(layer, Proj::K), x);
        let mut k = block.attn.wk.forward(x);
        obs.observe(LinearId::new(layer, Proj::V), x);
        let v = block.attn.wv.forward(x);

        ops::rope_in_place(&mut q, positions, hd, c.rope_theta);
        ops::rope_in_place(&mut k, positions, hd, c.rope_theta);

        // The timed attention section covers cache append + materialization
        // (dequantize-on-load for quantized stores) and the per-head
        // score/softmax/mix arithmetic — everything except the four linear
        // projections, which account under the GEMM metric.
        let t = Telemetry::global();
        let attn_timer = t.timer(names::OP_ATTENTION_WALL_NS);
        let attn_span = span!(names::SPAN_ATTENTION, layer = layer);
        cache.append(layer, &k, &v);
        let keys = cache.keys(layer);
        let values = cache.values(layer);
        let kv_len = keys.rows();
        let offset = kv_len - x.rows();
        t.counter_add(
            names::OP_ATTENTION_BYTES,
            // Materialized FP32 keys + values.
            (4 * 2 * kv_len * keys.cols()) as u64,
        );
        t.counter_add(names::OP_ATTENTION_CALLS, 1);

        let scale = 1.0 / cast::usize_to_f32(hd).sqrt();
        // Heads are independent read-only functions of (q, keys, values);
        // running them on the pool keeps each head's arithmetic identical to
        // the sequential loop, so the concat below is bit-stable for any
        // thread count. A worker panic (impossible for well-formed configs)
        // falls back to the sequential loop, which re-raises it on the
        // caller thread — preserving the panic contract.
        let compute_head = |h: usize| {
            let kv_h = h / c.group_size();
            let q_h = q.slice_cols(h * hd, (h + 1) * hd);
            let k_h = keys.slice_cols(kv_h * hd, (kv_h + 1) * hd);
            let v_h = values.slice_cols(kv_h * hd, (kv_h + 1) * hd);
            let mut scores = q_h.matmul_nt(&k_h);
            scores.scale_in_place(scale);
            ops::causal_mask_in_place(&mut scores, offset);
            let probs = ops::softmax_rows(&scores);
            probs.matmul(&v_h)
        };
        let head_ids: Vec<usize> = (0..c.heads).collect();
        let heads = Pool::global()
            .par_map(&head_ids, |_, &h| compute_head(h))
            .unwrap_or_else(|_| head_ids.iter().map(|&h| compute_head(h)).collect());
        let mut concat = heads[0].clone();
        for h in &heads[1..] {
            concat = concat.hstack(h);
        }
        drop(attn_span);
        attn_timer.stop();
        obs.observe(LinearId::new(layer, Proj::O), &concat);
        block.attn.wo.forward(&concat)
    }

    /// Number of linear layers in the model.
    pub fn num_linears(&self) -> usize {
        let mut n = 0;
        self.visit_linears(|_, _| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Fp32KvCache;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            vocab: 96,
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            experts: 1,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            max_seq_len: 64,
        }
    }

    #[test]
    fn forward_shapes() {
        let config = tiny_config();
        let m = LlamaModel::random_init(config, 1);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let logits = m.forward(&[5, 6, 7], &mut cache);
        assert_eq!(logits.shape(), (3, config.vocab));
        assert_eq!(cache.len(0), 3);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn incremental_decode_matches_full_forward() {
        // The KV cache must make token-by-token decoding produce the same
        // final logits as processing the whole sequence at once.
        let config = tiny_config();
        let m = LlamaModel::random_init(config, 2);
        let tokens = [10u16, 20, 30, 40, 50];

        let mut full_cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let full = m.forward(&tokens, &mut full_cache);

        let mut inc_cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut last = Matrix::zeros(0, 0);
        for &t in &tokens {
            last = m.forward(&[t], &mut inc_cache);
        }
        let full_last = full.row(tokens.len() - 1);
        for (a, b) in full_last.iter().zip(last.row(0)) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gqa_forward_works() {
        let config = ModelConfig {
            kv_heads: 2,
            ..tiny_config()
        };
        let m = LlamaModel::random_init(config, 3);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let logits = m.forward(&[1, 2, 3, 4], &mut cache);
        assert_eq!(logits.shape(), (4, config.vocab));
        assert_eq!(cache.keys(0).cols(), config.kv_dim());
    }

    #[test]
    fn moe_forward_works() {
        let config = ModelConfig {
            experts: 4,
            ..tiny_config()
        };
        let m = LlamaModel::random_init(config, 4);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let logits = m.forward(&[1, 2], &mut cache);
        assert_eq!(logits.shape(), (2, config.vocab));
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn linear_count() {
        let m = LlamaModel::random_init(tiny_config(), 5);
        // 2 layers x (4 attention + 3 mlp).
        assert_eq!(m.num_linears(), 14);
        let moe = LlamaModel::random_init(
            ModelConfig {
                experts: 2,
                ..tiny_config()
            },
            5,
        );
        // 2 layers x (4 attention + 1 router + 2x3 expert mlp).
        assert_eq!(moe.num_linears(), 22);
    }

    #[test]
    fn observer_sees_every_linear_input() {
        use std::collections::HashSet;

        #[derive(Debug, Default)]
        struct Collect(HashSet<LinearId>, usize);
        impl ForwardObserver for Collect {
            fn observe(&mut self, id: LinearId, input: &Matrix) {
                self.0.insert(id);
                self.1 += 1;
                assert!(input.rows() > 0);
            }
        }

        let config = tiny_config();
        let m = LlamaModel::random_init(config, 6);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut obs = Collect::default();
        m.forward_observed(&[1, 2, 3], &mut cache, &mut obs);
        assert_eq!(obs.0.len(), m.num_linears());
        assert_eq!(obs.1, m.num_linears());
    }

    #[test]
    fn map_linears_identity_preserves_output() {
        let config = tiny_config();
        let m = LlamaModel::random_init(config, 7);
        let mut c1 = Fp32KvCache::new(config.layers, config.kv_dim());
        let before = m.forward(&[3, 1, 4], &mut c1);
        let mapped = m.clone().map_linears(|_, l| l);
        let mut c2 = Fp32KvCache::new(config.layers, config.kv_dim());
        let after = mapped.forward(&[3, 1, 4], &mut c2);
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let config = tiny_config();
        let m = LlamaModel::random_init(config, 8);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        m.forward(&[9999], &mut cache);
    }
}
