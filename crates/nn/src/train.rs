//! AdamW training of Llama-style models on the autograd tape.
//!
//! The reproduction needs *trained* models — quantization error is only
//! meaningful against weights that encode real structure — so this module
//! trains the character-level models of the zoo from scratch. Parameters
//! live in a flat `Vec<Matrix>` with a schema mirroring the model layout;
//! each optimization step replays them onto a fresh [`Tape`], accumulates
//! gradients over a mini-batch of sequences, clips the global norm, and
//! applies AdamW with warmup + cosine decay.

use crate::autograd::{Tape, TensorId};
use crate::config::ModelConfig;
use crate::linear::DenseLinear;
use crate::model::{Attention, Block, FeedForward, LlamaModel, Mlp};
use atom_tensor::cast;
use atom_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainSpec {
    /// Number of optimizer steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps before cosine decay.
    pub warmup: usize,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// RNG seed for init and batch sampling.
    pub seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            steps: 300,
            batch: 4,
            seq_len: 128,
            lr: 3e-3,
            warmup: 20,
            weight_decay: 0.01,
            clip: 1.0,
            seed: 0,
        }
    }
}

/// Loss trace of a completed run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainMetrics {
    /// Training loss (nats/token) after each step.
    pub losses: Vec<f32>,
}

impl TrainMetrics {
    /// Mean loss over the last `n` steps (or fewer if the run was shorter).
    pub fn tail_loss(&self, n: usize) -> f32 {
        let tail = &self.losses[self.losses.len().saturating_sub(n)..];
        if tail.is_empty() {
            return f32::NAN;
        }
        tail.iter().sum::<f32>() / cast::usize_to_f32(tail.len())
    }
}

/// Flat parameter store with a schema mirroring [`LlamaModel`].
#[derive(Debug, Clone)]
struct ParamStore {
    config: ModelConfig,
    params: Vec<Matrix>,
}

impl ParamStore {
    fn init(config: ModelConfig, seed: u64) -> Self {
        config.validate().expect("invalid model config");
        let mut rng = SeededRng::new(seed ^ 0x7124_1145);
        let d = config.dim;
        let kvd = config.kv_dim();
        let mut params = Vec::new();
        params.push(rng.normal_matrix(config.vocab, d, 0.0, 0.02)); // embed
        for _ in 0..config.layers {
            params.push(Matrix::full(1, d, 1.0)); // attn_norm
            params.push(rng.kaiming_matrix(d, d, 1.0)); // wq
            params.push(rng.kaiming_matrix(kvd, d, 1.0)); // wk
            params.push(rng.kaiming_matrix(kvd, d, 1.0)); // wv
            // Scale the residual-writing projections down by depth, a common
            // stabilization for small transformers.
            let res_gain = 1.0 / (2.0 * cast::usize_to_f32(config.layers)).sqrt();
            params.push(rng.kaiming_matrix(d, d, res_gain)); // wo
            params.push(Matrix::full(1, d, 1.0)); // ffn_norm
            if config.experts > 1 {
                params.push(rng.kaiming_matrix(config.experts, d, 1.0)); // router
            }
            for _ in 0..config.experts {
                params.push(rng.kaiming_matrix(config.ffn_dim, d, 1.0)); // gate
                params.push(rng.kaiming_matrix(config.ffn_dim, d, 1.0)); // up
                params.push(rng.kaiming_matrix(d, config.ffn_dim, res_gain)); // down
            }
        }
        params.push(Matrix::full(1, d, 1.0)); // final_norm
        params.push(rng.kaiming_matrix(config.vocab, d, 1.0)); // head
        ParamStore { config, params }
    }

    /// Registers every parameter as a tape leaf, in schema order.
    fn leaves(&self, tape: &mut Tape) -> Vec<TensorId> {
        self.params.iter().map(|p| tape.leaf(p.clone())).collect()
    }

    fn export(&self) -> LlamaModel<DenseLinear> {
        let c = self.config;
        let mut it = self.params.iter().cloned();
        let embed = it.next().expect("embed");
        let mut blocks = Vec::with_capacity(c.layers);
        for _ in 0..c.layers {
            let attn_norm = it.next().expect("attn_norm").into_vec();
            let wq = DenseLinear::new(it.next().expect("wq"));
            let wk = DenseLinear::new(it.next().expect("wk"));
            let wv = DenseLinear::new(it.next().expect("wv"));
            let wo = DenseLinear::new(it.next().expect("wo"));
            let ffn_norm = it.next().expect("ffn_norm").into_vec();
            let ffn = if c.experts > 1 {
                let router = DenseLinear::new(it.next().expect("router"));
                let experts = (0..c.experts)
                    .map(|_| Mlp {
                        gate: DenseLinear::new(it.next().expect("gate")),
                        up: DenseLinear::new(it.next().expect("up")),
                        down: DenseLinear::new(it.next().expect("down")),
                    })
                    .collect();
                FeedForward::Moe { router, experts }
            } else {
                FeedForward::Dense(Mlp {
                    gate: DenseLinear::new(it.next().expect("gate")),
                    up: DenseLinear::new(it.next().expect("up")),
                    down: DenseLinear::new(it.next().expect("down")),
                })
            };
            blocks.push(Block {
                attn_norm,
                attn: Attention { wq, wk, wv, wo },
                ffn_norm,
                ffn,
            });
        }
        let final_norm = it.next().expect("final_norm").into_vec();
        let head = it.next().expect("head");
        assert!(it.next().is_none(), "parameter schema mismatch");
        LlamaModel::from_parts(c, embed, blocks, final_norm, head)
    }
}

/// Schema-order view of parameter ids for the tape forward pass.
struct ParamIds<'a> {
    config: &'a ModelConfig,
    ids: &'a [TensorId],
    cursor: std::cell::Cell<usize>,
}

impl<'a> ParamIds<'a> {
    fn new(config: &'a ModelConfig, ids: &'a [TensorId]) -> Self {
        ParamIds {
            config,
            ids,
            cursor: std::cell::Cell::new(0),
        }
    }

    fn next(&self) -> TensorId {
        let i = self.cursor.get();
        self.cursor.set(i + 1);
        self.ids[i]
    }

    fn reset(&self) {
        self.cursor.set(0);
    }

    fn config(&self) -> &ModelConfig {
        self.config
    }
}

/// Builds the full forward graph of one sequence on the tape and returns the
/// mean cross-entropy loss id.
fn sequence_loss(tape: &mut Tape, params: &ParamIds<'_>, inputs: &[u16], targets: &[u16]) -> TensorId {
    let c = *params.config();
    let hd = c.head_dim();
    let positions: Vec<usize> = (0..inputs.len()).collect();
    params.reset();

    let embed = params.next();
    let mut x = tape.embedding(embed, inputs);

    for _ in 0..c.layers {
        let attn_norm = params.next();
        let wq = params.next();
        let wk = params.next();
        let wv = params.next();
        let wo = params.next();
        let ffn_norm = params.next();

        // Attention.
        let normed = tape.rmsnorm(x, attn_norm, c.norm_eps);
        let q0 = tape.matmul_nt(normed, wq);
        let k0 = tape.matmul_nt(normed, wk);
        let v = tape.matmul_nt(normed, wv);
        let q = tape.rope(q0, &positions, hd, c.rope_theta);
        let k = tape.rope(k0, &positions, hd, c.rope_theta);
        let scale = 1.0 / cast::usize_to_f32(hd).sqrt();
        let mut heads = Vec::with_capacity(c.heads);
        for h in 0..c.heads {
            let kv_h = h / c.group_size();
            let q_h = tape.slice_cols(q, h * hd, (h + 1) * hd);
            let k_h = tape.slice_cols(k, kv_h * hd, (kv_h + 1) * hd);
            let v_h = tape.slice_cols(v, kv_h * hd, (kv_h + 1) * hd);
            let scores = tape.matmul_nt(q_h, k_h);
            let scaled = tape.scale(scores, scale);
            let probs = tape.masked_softmax(scaled, 0);
            heads.push(tape.matmul(probs, v_h));
        }
        let concat = tape.hstack(&heads);
        let attn_out = tape.matmul_nt(concat, wo);
        x = tape.add(x, attn_out);

        // Feed-forward.
        let normed = tape.rmsnorm(x, ffn_norm, c.norm_eps);
        let ffn_out = if c.experts > 1 {
            let router = params.next();
            let logits = tape.matmul_nt(normed, router);
            // Unmasked softmax: an offset of `experts` masks nothing.
            let gates = tape.masked_softmax(logits, c.experts);
            let mut acc: Option<TensorId> = None;
            for e in 0..c.experts {
                let gate_w = params.next();
                let up_w = params.next();
                let down_w = params.next();
                let g = tape.matmul_nt(normed, gate_w);
                let g = tape.silu(g);
                let u = tape.matmul_nt(normed, up_w);
                let h = tape.mul(g, u);
                let out = tape.matmul_nt(h, down_w);
                let gate_col = tape.slice_cols(gates, e, e + 1);
                let weighted = tape.mul_broadcast_col(out, gate_col);
                acc = Some(match acc {
                    Some(a) => tape.add(a, weighted),
                    None => weighted,
                });
            }
            acc.expect("at least one expert")
        } else {
            let gate_w = params.next();
            let up_w = params.next();
            let down_w = params.next();
            let g = tape.matmul_nt(normed, gate_w);
            let g = tape.silu(g);
            let u = tape.matmul_nt(normed, up_w);
            let h = tape.mul(g, u);
            tape.matmul_nt(h, down_w)
        };
        x = tape.add(x, ffn_out);
    }

    let final_norm = params.next();
    let head = params.next();
    let x = tape.rmsnorm(x, final_norm, c.norm_eps);
    let logits = tape.matmul_nt(x, head);
    tape.cross_entropy_mean(logits, targets)
}

/// Trains a model on a token stream and returns it with the loss trace.
///
/// # Panics
///
/// Panics if `tokens` is shorter than `spec.seq_len + 1` or the config is
/// invalid.
pub fn train(config: ModelConfig, tokens: &[u16], spec: TrainSpec) -> (LlamaModel<DenseLinear>, TrainMetrics) {
    assert!(
        tokens.len() > spec.seq_len + 1,
        "need more than {} tokens, got {}",
        spec.seq_len + 1,
        tokens.len()
    );
    let mut store = ParamStore::init(config, spec.seed);
    let mut rng = SeededRng::new(spec.seed ^ 0xBA7C_4E55);
    let n_params = store.params.len();
    let mut adam_m: Vec<Matrix> = store
        .params
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();
    let mut adam_v = adam_m.clone();
    let (beta1, beta2, eps) = (0.9f32, 0.95f32, 1e-8f32);
    let mut metrics = TrainMetrics::default();

    for step in 0..spec.steps {
        let mut tape = Tape::new();
        let ids = store.leaves(&mut tape);
        let param_ids = ParamIds::new(&config, &ids);

        // Accumulate loss over the batch on one tape (gradients sum).
        let mut losses = Vec::with_capacity(spec.batch);
        for _ in 0..spec.batch {
            let start = rng.below(tokens.len() - spec.seq_len - 1);
            let inputs = &tokens[start..start + spec.seq_len];
            let targets = &tokens[start + 1..start + spec.seq_len + 1];
            losses.push(sequence_loss(&mut tape, &param_ids, inputs, targets));
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = tape.add(total, l);
        }
        let mean_loss = tape.scale(total, 1.0 / cast::usize_to_f32(spec.batch));
        let loss_value = tape.value(mean_loss)[(0, 0)];
        tape.backward(mean_loss);

        // Gather, clip, and apply gradients.
        let mut grads: Vec<Matrix> = ids
            .iter()
            .zip(store.params.iter())
            .map(|(&id, p)| {
                tape.grad(id)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(p.rows(), p.cols()))
            })
            .collect();
        let global_norm: f32 = grads
            .iter()
            .map(|g| {
                let n = g.frob_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt();
        if global_norm > spec.clip {
            let s = spec.clip / global_norm;
            for g in &mut grads {
                g.scale_in_place(s);
            }
        }

        let lr = lr_at(step, &spec);
        let t = cast::usize_to_i32_saturating(step + 1);
        for i in 0..n_params {
            let g = &grads[i];
            let m = &mut adam_m[i];
            m.scale_in_place(beta1);
            m.add_scaled_in_place(g, 1.0 - beta1);
            let v = &mut adam_v[i];
            v.scale_in_place(beta2);
            for (vv, gg) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *vv += (1.0 - beta2) * gg * gg;
            }
            let bc1 = 1.0 - beta1.powi(t);
            let bc2 = 1.0 - beta2.powi(t);
            let p = &mut store.params[i];
            // Norm gains and embeddings are excluded from weight decay.
            let decay = if p.rows() == 1 { 0.0 } else { spec.weight_decay };
            for ((pv, mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *pv -= lr * (mhat / (vhat.sqrt() + eps) + decay * *pv);
            }
        }
        metrics.losses.push(loss_value);
    }

    (store.export(), metrics)
}

fn lr_at(step: usize, spec: &TrainSpec) -> f32 {
    if step < spec.warmup {
        return spec.lr * cast::usize_to_f32(step + 1) / cast::usize_to_f32(spec.warmup);
    }
    let progress = cast::usize_to_f32(step - spec.warmup) / cast::usize_to_f32((spec.steps - spec.warmup).max(1));
    0.5 * spec.lr * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Fp32KvCache;

    fn micro_config() -> ModelConfig {
        ModelConfig {
            vocab: 96,
            dim: 16,
            layers: 1,
            heads: 2,
            kv_heads: 2,
            ffn_dim: 32,
            experts: 1,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            max_seq_len: 64,
        }
    }

    /// A trivially learnable stream: a repeating 8-token motif.
    fn motif_tokens(len: usize) -> Vec<u16> {
        let motif = [1u16, 7, 3, 9, 42, 5, 11, 2];
        (0..len).map(|i| motif[i % motif.len()]).collect()
    }

    #[test]
    fn loss_decreases_on_learnable_stream() {
        let tokens = motif_tokens(600);
        let spec = TrainSpec {
            steps: 40,
            batch: 2,
            seq_len: 32,
            lr: 5e-3,
            warmup: 5,
            ..TrainSpec::default()
        };
        let (_, metrics) = train(micro_config(), &tokens, spec);
        let first = metrics.losses[..5].iter().sum::<f32>() / 5.0;
        let last = metrics.tail_loss(5);
        assert!(
            last < first * 0.5,
            "loss did not halve: first {first}, last {last}"
        );
    }

    #[test]
    fn trained_model_predicts_motif() {
        let tokens = motif_tokens(600);
        let spec = TrainSpec {
            steps: 60,
            batch: 2,
            seq_len: 32,
            lr: 5e-3,
            warmup: 5,
            ..TrainSpec::default()
        };
        let (model, _) = train(micro_config(), &tokens, spec);
        let mut cache = Fp32KvCache::new(1, model.config().kv_dim());
        let logits = model.forward(&tokens[..16], &mut cache);
        // Predict the token after position 15, which is tokens[16].
        let pred = atom_tensor::ops::argmax(logits.row(15));
        assert_eq!(pred as u16, tokens[16], "model failed to learn the motif");
    }

    #[test]
    fn training_is_deterministic() {
        let tokens = motif_tokens(300);
        let spec = TrainSpec {
            steps: 5,
            batch: 1,
            seq_len: 16,
            ..TrainSpec::default()
        };
        let (_, m1) = train(micro_config(), &tokens, spec);
        let (_, m2) = train(micro_config(), &tokens, spec);
        assert_eq!(m1.losses, m2.losses);
    }

    #[test]
    fn moe_model_trains() {
        let tokens = motif_tokens(400);
        let config = ModelConfig {
            experts: 2,
            ..micro_config()
        };
        let spec = TrainSpec {
            steps: 20,
            batch: 1,
            seq_len: 24,
            lr: 5e-3,
            warmup: 3,
            ..TrainSpec::default()
        };
        let (model, metrics) = train(config, &tokens, spec);
        assert!(metrics.tail_loss(3) < metrics.losses[0]);
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let logits = model.forward(&[1, 2, 3], &mut cache);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gqa_model_trains() {
        let tokens = motif_tokens(400);
        let config = ModelConfig {
            heads: 4,
            kv_heads: 2,
            dim: 16,
            ..micro_config()
        };
        let spec = TrainSpec {
            steps: 10,
            batch: 1,
            seq_len: 24,
            ..TrainSpec::default()
        };
        let (model, metrics) = train(config, &tokens, spec);
        assert!(metrics.losses.iter().all(|l| l.is_finite()));
        assert_eq!(model.config().kv_heads, 2);
    }

    #[test]
    fn lr_schedule_shape() {
        let spec = TrainSpec {
            steps: 100,
            warmup: 10,
            lr: 1.0,
            ..TrainSpec::default()
        };
        assert!(lr_at(0, &spec) < lr_at(9, &spec));
        assert!((lr_at(10, &spec) - 1.0).abs() < 0.02);
        assert!(lr_at(99, &spec) < 0.01);
    }
}
