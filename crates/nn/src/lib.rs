//! Llama-family models, autograd, and training for the Atom reproduction.
//!
//! This crate supplies the *models being quantized*: a decoder-only
//! Llama-style transformer ([`model::LlamaModel`]) that is generic over its
//! linear-layer precision, a tape-based autograd engine ([`autograd`]) and
//! AdamW trainer ([`train`]) used to produce genuinely trained weights, a
//! function-preserving outlier-injection transform ([`transform`]) that
//! reproduces the activation-outlier phenomenon of large LLMs (paper
//! Fig. 5), quality metrics ([`eval`]), and a cached model zoo ([`zoo`])
//! standing in for the Llama 7B–65B checkpoints.
//!
//! # Example
//!
//! ```
//! use atom_nn::{config::ModelConfig, kv::Fp32KvCache, model::LlamaModel};
//!
//! let config = ModelConfig { layers: 2, ..ModelConfig::default() };
//! let model = LlamaModel::random_init(config, 0);
//! let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
//! let logits = model.forward(&[10, 20, 30], &mut cache);
//! assert_eq!(logits.shape(), (3, config.vocab));
//! ```

#![forbid(unsafe_code)]
pub mod autograd;
pub mod config;
pub mod eval;
pub mod kv;
pub mod linear;
pub mod model;
pub mod serialize;
pub mod train;
pub mod transform;
pub mod zoo;

pub use config::ModelConfig;
pub use kv::{Fp32KvCache, KvStore};
pub use linear::{DenseLinear, LinearLayer};
pub use model::{ForwardObserver, LinearId, LlamaModel, NoopObserver, Proj};
