//! Outlier-channel injection via function-preserving equivalence transforms.
//!
//! Real LLMs exhibit a handful of activation channels whose magnitudes are
//! orders larger than the rest (paper Fig. 5); this phenomenon is the
//! central difficulty Atom's mixed-precision design addresses. Models as
//! small as this reproduction's zoo do not develop such outliers on their
//! own, so we *create* them with the exact inverse of SmoothQuant's
//! smoothing transform: pick channels, multiply them by a large factor at
//! the point where the activation is produced, and divide the consuming
//! weight columns by the same factor. The FP32 model computes the identical
//! function (up to float rounding); only its *intermediate activations* gain
//! heavy-tailed channels — precisely the property quantization error cares
//! about.
//!
//! Injection sites:
//!
//! 1. **Attention input** — scale `attn_norm` gains, divide columns of
//!    `wq`/`wk`/`wv`.
//! 2. **FFN input** — scale `ffn_norm` gains, divide columns of
//!    `gate`/`up` (every expert) and the MoE router.
//! 3. **MLP hidden** — scale rows of `up`, divide columns of `down`.
//! 4. **Attention output** — scale rows of `wv` (value channels), divide
//!    the matching head-expanded columns of `wo`.

use crate::linear::DenseLinear;
use crate::model::{FeedForward, LlamaModel};
use atom_tensor::cast;
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Parameters of the outlier injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierSpec {
    /// Number of channels per injection site that become outliers.
    pub channels_per_site: usize,
    /// Median scale factor applied to outlier channels.
    pub magnitude: f32,
    /// Median scale factor for the value-channel site (site 4). Kept far
    /// smaller than `magnitude`: the paper's Fig. 9 observes that the V
    /// cache exhibits the outlier phenomenon much less than activations,
    /// and that mildness is what makes the KV-cache quantizable (§4.4).
    pub value_magnitude: f32,
    /// Log-normal spread of the per-channel factors (0 = all identical).
    pub spread: f64,
    /// RNG seed selecting channels and factors.
    pub seed: u64,
}

impl Default for OutlierSpec {
    fn default() -> Self {
        OutlierSpec {
            channels_per_site: 4,
            magnitude: 40.0,
            value_magnitude: 4.0,
            spread: 0.35,
            seed: 0,
        }
    }
}

/// Applies the outlier-injection transform in place.
///
/// The transformed model computes the same function as the original up to
/// floating-point rounding; its hidden activations gain
/// `spec.channels_per_site` outlier channels at each injection site.
///
/// # Panics
///
/// Panics if `channels_per_site` exceeds any injected dimension.
pub fn inject_outliers(model: &mut LlamaModel<DenseLinear>, spec: &OutlierSpec) {
    let config = *model.config();
    let dim = config.dim;
    assert!(
        spec.channels_per_site <= dim && spec.channels_per_site <= config.ffn_dim,
        "channels_per_site {} exceeds model dims",
        spec.channels_per_site
    );
    let mut rng = SeededRng::new(spec.seed ^ 0x0071_1E85);

    let draw_factors = |rng: &mut SeededRng, n: usize, max: usize, magnitude: f32| {
        let idx = rng.sample_indices(max, n);
        let factors: Vec<f32> = (0..n)
            .map(|_| {
                let f = cast::f64_to_f32(rng.lognormal_f64((magnitude as f64).ln(), spec.spread));
                f.max(2.0)
            })
            .collect();
        (idx, factors)
    };

    for block in &mut model.blocks {
        // Site 1: attention input channels.
        let (idx, factors) = draw_factors(&mut rng, spec.channels_per_site, dim, spec.magnitude);
        for (&c, &f) in idx.iter().zip(&factors) {
            block.attn_norm[c] *= f;
            for w in [&mut block.attn.wq, &mut block.attn.wk, &mut block.attn.wv] {
                scale_col(w, c, 1.0 / f);
            }
        }

        // Site 4: attention output (value channels -> wo columns).
        let kv_dim = config.kv_dim();
        let (idx, factors) = draw_factors(
            &mut rng,
            spec.channels_per_site.min(kv_dim),
            kv_dim,
            spec.value_magnitude,
        );
        let hd = config.head_dim();
        let group = config.group_size();
        for (&c, &f) in idx.iter().zip(&factors) {
            scale_row(&mut block.attn.wv, c, f);
            // Value channel c of kv head (c / hd) feeds concat column
            // q_head * hd + (c % hd) for every q head in the group.
            let kv_head = c / hd;
            let within = c % hd;
            for g in 0..group {
                let q_head = kv_head * group + g;
                scale_col(&mut block.attn.wo, q_head * hd + within, 1.0 / f);
            }
        }

        // Sites 2 and 3: FFN input and MLP hidden channels.
        let (in_idx, in_factors) =
            draw_factors(&mut rng, spec.channels_per_site, dim, spec.magnitude);
        let (hid_idx, hid_factors) =
            draw_factors(&mut rng, spec.channels_per_site, config.ffn_dim, spec.magnitude);
        for (&c, &f) in in_idx.iter().zip(&in_factors) {
            block.ffn_norm[c] *= f;
        }
        match &mut block.ffn {
            FeedForward::Dense(mlp) => {
                for (&c, &f) in in_idx.iter().zip(&in_factors) {
                    scale_col(&mut mlp.gate, c, 1.0 / f);
                    scale_col(&mut mlp.up, c, 1.0 / f);
                }
                for (&c, &f) in hid_idx.iter().zip(&hid_factors) {
                    scale_row(&mut mlp.up, c, f);
                    scale_col(&mut mlp.down, c, 1.0 / f);
                }
            }
            FeedForward::Moe { router, experts } => {
                for (&c, &f) in in_idx.iter().zip(&in_factors) {
                    scale_col(router, c, 1.0 / f);
                }
                for mlp in experts {
                    for (&c, &f) in in_idx.iter().zip(&in_factors) {
                        scale_col(&mut mlp.gate, c, 1.0 / f);
                        scale_col(&mut mlp.up, c, 1.0 / f);
                    }
                    for (&c, &f) in hid_idx.iter().zip(&hid_factors) {
                        scale_row(&mut mlp.up, c, f);
                        scale_col(&mut mlp.down, c, 1.0 / f);
                    }
                }
            }
        }
    }
}

fn scale_col(layer: &mut DenseLinear, col: usize, s: f32) {
    let w = layer.weight_mut();
    for r in 0..w.rows() {
        w[(r, col)] *= s;
    }
}

fn scale_row(layer: &mut DenseLinear, row: usize, s: f32) {
    let w = layer.weight_mut();
    for v in w.row_mut(row) {
        *v *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::kv::Fp32KvCache;
    use crate::model::{ForwardObserver, LinearId, LlamaModel};
    use atom_tensor::stats::ChannelStats;
    use atom_tensor::Matrix;
    use std::collections::HashMap;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            ..ModelConfig::default()
        }
    }

    fn forward_logits(m: &LlamaModel<DenseLinear>, tokens: &[u16]) -> Matrix {
        let c = m.config();
        let mut cache = Fp32KvCache::new(c.layers, c.kv_dim());
        m.forward(tokens, &mut cache)
    }

    #[test]
    fn transform_preserves_function() {
        let mut m = LlamaModel::random_init(tiny_config(), 1);
        let tokens = [3u16, 14, 15, 92, 65, 35];
        let before = forward_logits(&m, &tokens);
        inject_outliers(&mut m, &OutlierSpec::default());
        let after = forward_logits(&m, &tokens);
        let mut max_rel = 0.0f32;
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            let rel = (a - b).abs() / (a.abs().max(1.0));
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 5e-3, "transform changed outputs: {max_rel}");
    }

    #[test]
    fn transform_preserves_function_gqa_and_moe() {
        for config in [
            ModelConfig {
                heads: 4,
                kv_heads: 2,
                ..tiny_config()
            },
            ModelConfig {
                experts: 3,
                ..tiny_config()
            },
        ] {
            let mut m = LlamaModel::random_init(config, 2);
            let tokens = [1u16, 2, 3, 4];
            let before = forward_logits(&m, &tokens);
            inject_outliers(&mut m, &OutlierSpec::default());
            let after = forward_logits(&m, &tokens);
            for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
                assert!(
                    (a - b).abs() / a.abs().max(1.0) < 5e-3,
                    "{config:?}: {a} vs {b}"
                );
            }
        }
    }

    /// Collects activation stats of every linear input.
    #[derive(Default)]
    struct StatObserver(HashMap<LinearId, ChannelStats>);
    impl ForwardObserver for StatObserver {
        fn observe(&mut self, id: LinearId, input: &Matrix) {
            self.0
                .entry(id)
                .or_insert_with(|| ChannelStats::new(input.cols()))
                .update(input);
        }
    }

    #[test]
    fn transform_creates_activation_outliers() {
        let config = tiny_config();
        let mut m = LlamaModel::random_init(config, 3);
        let tokens: Vec<u16> = (0..48).map(|i| (i * 7 % 96) as u16).collect();

        let ratio_of = |m: &LlamaModel<DenseLinear>| {
            let mut obs = StatObserver::default();
            let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
            m.forward_observed(&tokens, &mut cache, &mut obs);
            // Average outlier ratio over the Q projections (attention inputs).
            let mut total = 0.0;
            let mut n = 0;
            for (id, stats) in &obs.0 {
                if id.proj == crate::model::Proj::Q {
                    total += stats.outlier_ratio();
                    n += 1;
                }
            }
            total / n as f64
        };

        let before = ratio_of(&m);
        inject_outliers(&mut m, &OutlierSpec::default());
        let after = ratio_of(&m);
        assert!(
            after > before * 5.0,
            "outlier ratio did not grow: {before} -> {after}"
        );
        assert!(after > 10.0, "absolute outlier ratio too small: {after}");
    }

    #[test]
    fn injection_is_deterministic() {
        let mut a = LlamaModel::random_init(tiny_config(), 4);
        let mut b = LlamaModel::random_init(tiny_config(), 4);
        inject_outliers(&mut a, &OutlierSpec::default());
        inject_outliers(&mut b, &OutlierSpec::default());
        assert_eq!(
            a.blocks[0].attn.wq.weight().as_slice(),
            b.blocks[0].attn.wq.weight().as_slice()
        );
    }
}
