//! Property-based tests of the model substrate: the KV-cache/incremental
//! decoding invariant, serialization roundtrips, and transform equivalence
//! across random configurations.

use atom_nn::kv::Fp32KvCache;
use atom_nn::transform::{inject_outliers, OutlierSpec};
use atom_nn::{LlamaModel, ModelConfig};
use proptest::prelude::*;

/// Random valid tiny configs.
fn config_strategy() -> impl Strategy<Value = ModelConfig> {
    (1usize..3, 1usize..3, 1usize..3, 1usize..3).prop_map(|(layers, h, kvg, e)| {
        let heads = h * 2; // 2 or 4
        let kv_heads = if heads % kvg == 0 { heads / kvg } else { heads };
        let kv_heads = if kv_heads == 0 { heads } else { kv_heads };
        ModelConfig {
            vocab: 96,
            dim: heads * 8, // head_dim 8, even
            layers,
            heads,
            kv_heads,
            ffn_dim: 32,
            experts: e, // 1..=2 dense or MoE
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            max_seq_len: 64,
        }
    })
    .prop_filter("valid", |c| c.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_decode_matches_batch(config in config_strategy(), seed in 0u64..100) {
        let model = LlamaModel::random_init(config, seed);
        let tokens: Vec<u16> = (0..6).map(|i| ((seed as usize + i * 13) % 96) as u16).collect();

        let mut full = Fp32KvCache::new(config.layers, config.kv_dim());
        let batch_logits = model.forward(&tokens, &mut full);

        let mut inc = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut last = None;
        for &t in &tokens {
            last = Some(model.forward(&[t], &mut inc));
        }
        let last = last.unwrap();
        for (a, b) in batch_logits.row(tokens.len() - 1).iter().zip(last.row(0)) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn forward_is_deterministic(config in config_strategy(), seed in 0u64..100) {
        let model = LlamaModel::random_init(config, seed);
        let tokens = [3u16, 50, 7];
        let mut c1 = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut c2 = Fp32KvCache::new(config.layers, config.kv_dim());
        prop_assert_eq!(
            model.forward(&tokens, &mut c1),
            model.forward(&tokens, &mut c2)
        );
    }

    #[test]
    fn serialize_roundtrip_random_configs(config in config_strategy(), seed in 0u64..100) {
        let model = LlamaModel::random_init(config, seed);
        let dir = std::env::temp_dir().join(format!(
            "atom-prop-serialize-{}-{seed}-{}",
            std::process::id(),
            config.param_count()
        ));
        let path = dir.join("m.bin");
        atom_nn::serialize::save_model(&model, &path).unwrap();
        let loaded = atom_nn::serialize::load_model(&path).unwrap();
        let tokens = [1u16, 2];
        let mut c1 = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut c2 = Fp32KvCache::new(config.layers, config.kv_dim());
        prop_assert_eq!(
            model.forward(&tokens, &mut c1),
            loaded.forward(&tokens, &mut c2)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outlier_injection_preserves_function(
        config in config_strategy(),
        seed in 0u64..50,
        magnitude in 5.0f32..80.0,
    ) {
        let mut model = LlamaModel::random_init(config, seed);
        let tokens = [10u16, 20, 30];
        let mut c1 = Fp32KvCache::new(config.layers, config.kv_dim());
        let before = model.forward(&tokens, &mut c1);
        inject_outliers(
            &mut model,
            &OutlierSpec {
                channels_per_site: 2,
                magnitude,
                value_magnitude: 3.0,
                spread: 0.2,
                seed,
            },
        );
        let mut c2 = Fp32KvCache::new(config.layers, config.kv_dim());
        let after = model.forward(&tokens, &mut c2);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            prop_assert!(
                (a - b).abs() / (a.abs().max(1.0)) < 1e-2,
                "function changed: {a} vs {b} (magnitude {magnitude})"
            );
        }
    }
}
