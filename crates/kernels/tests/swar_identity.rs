//! Directed scalar-vs-SWAR bit-identity tests at the shapes property
//! generators rarely hit: empty reductions, single groups, accumulator-cap
//! boundaries, and the ragged column tails where the SWAR word loop hands
//! over to its scalar epilogue.

use atom_kernels::gemm::{fused_group_gemm_with_path, MAX_ACC_K};
use atom_kernels::{
    attention_quant_kv_path, AsymQuantized, GroupQuantized, KernelPath, PackedMatrix, QuantSpec,
    QuantizedKvHead,
};
use atom_parallel::Pool;
use atom_tensor::{Matrix, SeededRng};

/// Runs the fused GEMM on both paths at thread widths 1/2/8 and asserts
/// exact equality everywhere.
fn assert_gemm_paths_identical(qa: &GroupQuantized, qw: &GroupQuantized, what: &str) {
    let scalar = fused_group_gemm_with_path(&Pool::sequential(), qa, qw, KernelPath::Scalar)
        .unwrap_or_else(|e| panic!("{what}: scalar path failed: {e}"));
    for threads in [1usize, 2, 8] {
        let swar = fused_group_gemm_with_path(&Pool::new(threads), qa, qw, KernelPath::Swar)
            .unwrap_or_else(|e| panic!("{what}: swar path failed: {e}"));
        assert_eq!(
            scalar.as_slice(),
            swar.as_slice(),
            "{what}: scalar != swar at {threads} threads"
        );
    }
}

fn quantized_pair(
    rng: &mut SeededRng,
    m: usize,
    n: usize,
    k: usize,
    bits: u8,
    group: usize,
) -> (GroupQuantized, GroupQuantized) {
    let a = rng.normal_matrix(m, k, 0.0, 1.0);
    let w = rng.normal_matrix(n, k, 0.0, 1.0);
    (
        GroupQuantized::quantize(&a, QuantSpec::new(bits, group)),
        GroupQuantized::quantize(&w, QuantSpec::new(bits, group)),
    )
}

#[test]
fn gemm_identical_with_empty_reduction() {
    // k = 0: no groups, every output element is the empty sum 0.0.
    let mut rng = SeededRng::new(1);
    let (qa, qw) = quantized_pair(&mut rng, 3, 4, 0, 4, 16);
    assert_gemm_paths_identical(&qa, &qw, "k=0");
}

#[test]
fn gemm_identical_with_empty_outputs() {
    let mut rng = SeededRng::new(2);
    let (qa, qw) = quantized_pair(&mut rng, 0, 4, 32, 4, 16);
    assert_gemm_paths_identical(&qa, &qw, "m=0");
    let (qa, qw) = quantized_pair(&mut rng, 3, 0, 32, 4, 16);
    assert_gemm_paths_identical(&qa, &qw, "n=0");
}

#[test]
fn gemm_identical_with_single_group() {
    // group >= k collapses the epilogue to a single dequant per element.
    let mut rng = SeededRng::new(3);
    let (qa, qw) = quantized_pair(&mut rng, 2, 5, 24, 4, usize::MAX);
    assert_gemm_paths_identical(&qa, &qw, "single group");
}

#[test]
fn gemm_identical_on_ragged_k_tails() {
    // K values straddling the 16-lane INT4 and 8-lane INT8 word boundaries:
    // one below, at, and above each, plus a prime far from any boundary.
    for &k in &[1usize, 7, 8, 9, 15, 16, 17, 31, 33, 61] {
        for bits in [4u8, 8] {
            let mut rng = SeededRng::new(1000 + k as u64 + u64::from(bits));
            let (qa, qw) = quantized_pair(&mut rng, 3, 4, k, bits, 16);
            assert_gemm_paths_identical(&qa, &qw, &format!("k={k} bits={bits}"));
        }
    }
}

#[test]
fn gemm_identical_at_odd_bit_widths() {
    // Widths with no SWAR fast path (scalar decode on both paths) still
    // go through the weight-block loop order on the SWAR path.
    for bits in [2u8, 3, 5, 6, 7] {
        let mut rng = SeededRng::new(2000 + u64::from(bits));
        let (qa, qw) = quantized_pair(&mut rng, 2, 3, 37, bits, 8);
        assert_gemm_paths_identical(&qa, &qw, &format!("bits={bits}"));
    }
}

#[test]
fn gemm_identical_at_accumulator_cap_boundary() {
    // K at and just below MAX_ACC_K with a single group: the per-group i32
    // sums sit as close to the overflow cap as a legal call can get, and
    // the two paths must still agree exactly. W8A8 (the widest setting) is
    // what the cap is derived for.
    assert_eq!(MAX_ACC_K, 131_071, "cap derivation changed; update docs");
    for k in [MAX_ACC_K, MAX_ACC_K - 1] {
        let mut rng = SeededRng::new(k as u64);
        let a = rng.normal_matrix(1, k, 0.0, 1.0);
        let w = rng.normal_matrix(2, k, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(8, usize::MAX));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(8, usize::MAX));
        assert_gemm_paths_identical(&qa, &qw, &format!("k={k} at cap"));
    }
}

#[test]
fn unpack_identical_on_sub_word_rows() {
    // Rows shorter than one SWAR word decode entirely in the scalar tail
    // of the SWAR path; they must still match the reference decode.
    for bits in [4u8, 8] {
        for cols in 1usize..20 {
            let lo = -(1i16 << (bits - 1)) as i32;
            let values: Vec<i8> = (0..cols)
                .map(|c| (lo + (c as i32 % (1 << bits))) as i8)
                .collect();
            let m = PackedMatrix::from_values(1, cols, bits, &values);
            let mut scalar = vec![0i8; cols];
            let mut swar = vec![0i8; cols];
            m.unpack_row_with(0, &mut scalar, KernelPath::Scalar);
            m.unpack_row_with(0, &mut swar, KernelPath::Swar);
            assert_eq!(scalar, swar, "bits={bits} cols={cols}");
            assert_eq!(scalar, values, "bits={bits} cols={cols} decode wrong");
        }
    }
}

#[test]
fn dequantize_scratch_identical_to_allocating() {
    let mut rng = SeededRng::new(7);
    let x = rng.normal_matrix(5, 19, 0.0, 2.0);
    for bits in [4u8, 8] {
        let q = AsymQuantized::quantize(&x, bits);
        let mut scratch = Vec::new();
        let mut via_scratch = vec![0.0f32; 19];
        let mut via_alloc = vec![0.0f32; 19];
        for r in 0..5 {
            for path in [KernelPath::Scalar, KernelPath::Swar] {
                q.dequantize_row_scratch(r, &mut via_scratch, &mut scratch, path);
                q.dequantize_row_into_with(r, &mut via_alloc, path);
                assert_eq!(via_scratch, via_alloc, "bits={bits} row={r} {path:?}");
            }
        }
    }
}

#[test]
fn attention_identical_on_degenerate_shapes() {
    let mut rng = SeededRng::new(8);
    // (kv_len, q_rows, head_dim): single token, sub-word head dims, and a
    // head dim straddling the 16-lane boundary.
    for &(len, q_rows, hd) in &[(1usize, 1usize, 1usize), (2, 1, 3), (5, 5, 17), (9, 2, 16)] {
        for bits in [2u8, 4, 8] {
            let mut kv = QuantizedKvHead::new(hd, bits);
            kv.append(
                &rng.normal_matrix(len, hd, 0.0, 1.0),
                &rng.normal_matrix(len, hd, 0.0, 1.0),
            );
            let q = rng.normal_matrix(q_rows, hd, 0.0, 1.0);
            let scale = 1.0 / (hd as f32).sqrt();
            let scalar = attention_quant_kv_path(&q, &kv, scale, KernelPath::Scalar);
            let swar = attention_quant_kv_path(&q, &kv, scale, KernelPath::Swar);
            assert_eq!(
                scalar.as_slice(),
                swar.as_slice(),
                "len={len} q={q_rows} hd={hd} bits={bits}"
            );
        }
    }
}

#[test]
fn attention_identical_on_empty_query() {
    let mut kv = QuantizedKvHead::new(4, 4);
    kv.append(&Matrix::full(2, 4, 1.0), &Matrix::full(2, 4, 2.0));
    let q = Matrix::zeros(0, 4);
    let scalar = attention_quant_kv_path(&q, &kv, 0.5, KernelPath::Scalar);
    let swar = attention_quant_kv_path(&q, &kv, 0.5, KernelPath::Swar);
    assert_eq!(scalar.as_slice(), swar.as_slice());
    assert_eq!(scalar.rows(), 0);
}
