//! Property-based tests of the kernel crate's quantization invariants.

use atom_kernels::gemm::{
    fused_group_gemm, fused_group_gemm_with, fused_group_gemm_with_path, mixed_gemm_with_path,
    reference_gemm,
};
use atom_kernels::{
    attention_quant_kv_heads_with, attention_quant_kv_path, AsymQuantized, GroupQuantized,
    KernelPath, PackedMatrix, QuantSpec, QuantizedKvHead,
};
use atom_parallel::Pool;
use atom_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-50.0f32..50.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn packed_matrix_roundtrips(
        bits in 2u8..=8,
        rows in 1usize..5,
        cols in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = atom_tensor::SeededRng::new(seed);
        let lo = -(1i16 << (bits - 1)) as i32;
        let hi = (1i16 << (bits - 1)) as i32 - 1;
        let values: Vec<i8> = (0..rows * cols)
            .map(|_| (lo + rng.below((hi - lo + 1) as usize) as i32) as i8)
            .collect();
        let m = PackedMatrix::from_values(rows, cols, bits, &values);
        prop_assert_eq!(m.unpack(), values);
    }

    #[test]
    fn symmetric_quantization_error_bounded(m in matrix(1..6, 1..48), bits in 3u8..=8) {
        let spec = QuantSpec::new(bits, 16);
        let q = GroupQuantized::quantize(&m, spec);
        let d = q.dequantize();
        let group = 16usize;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let g = c / group;
                let s = q.scales()[(r, g)];
                let err = (m[(r, c)] - d[(r, c)]).abs();
                // Half a step plus f16 scale-rounding slack.
                prop_assert!(
                    err <= 0.5 * s + m[(r, c)].abs() * 2e-3 + 1e-6,
                    "err {err} vs step {s} at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn asymmetric_quantization_error_bounded(m in matrix(1..6, 2..32), bits in 3u8..=8) {
        let q = AsymQuantized::quantize(&m, bits);
        let d = q.dequantize();
        let levels = ((1u32 << bits) - 1) as f32;
        for r in 0..m.rows() {
            let row = m.row(r);
            let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let step = ((hi - lo) / levels).max(f32::MIN_POSITIVE);
            for (a, b) in row.iter().zip(d.row(r)) {
                prop_assert!(
                    (a - b).abs() <= 0.51 * step + a.abs() * 2e-3 + 1e-6,
                    "row {r}: {a} vs {b}, step {step}"
                );
            }
        }
    }

    #[test]
    fn requantization_moves_at_most_one_step(m in matrix(1..4, 1..24), bits in 3u8..=8) {
        // The paper's scale formula s = 2*amax/(2^n - 1) never places amax
        // itself on the grid (it maps to the half-step (2^n-1)/2), so
        // quantization is NOT idempotent — but a second pass may move each
        // value by at most one step of its new scale.
        let spec = QuantSpec::new(bits, 8);
        let q2 = GroupQuantized::quantize(
            &GroupQuantized::quantize(&m, spec).dequantize(),
            spec,
        );
        let once = GroupQuantized::quantize(&m, spec).dequantize();
        let twice = q2.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let s = q2.scales()[(r, c / 8)];
                let delta = (once[(r, c)] - twice[(r, c)]).abs();
                prop_assert!(delta <= s + 1e-6, "moved {delta} with step {s}");
            }
        }
    }

    #[test]
    fn fused_gemm_equals_reference(
        seed in 0u64..500,
        m in 1usize..5,
        n in 1usize..6,
        groups in 1usize..4,
        bits in 3u8..=8,
    ) {
        let k = groups * 8;
        let mut rng = atom_tensor::SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let w = rng.normal_matrix(n, k, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(bits, 8));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(bits, 8));
        let fused = fused_group_gemm(&qa, &qw).unwrap();
        let reference = reference_gemm(&qa, &qw);
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_gemm_bit_identical_to_sequential(
        seed in 0u64..300,
        m in 1usize..8,
        n in 1usize..8,
        groups in 1usize..4,
        bits in 3u8..=8,
    ) {
        // The determinism contract: pool width never changes a single
        // output bit (disjoint row tiles, no atomics in reductions).
        let k = groups * 8;
        let mut rng = atom_tensor::SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let w = rng.normal_matrix(n, k, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(bits, 8));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(bits, 8));
        let solo = fused_group_gemm_with(&Pool::sequential(), &qa, &qw).unwrap();
        for threads in [2usize, 4, 8] {
            let par = fused_group_gemm_with(&Pool::new(threads), &qa, &qw).unwrap();
            prop_assert_eq!(solo.as_slice(), par.as_slice());
        }
    }

    #[test]
    fn parallel_quantization_bit_identical(
        m in matrix(1..10, 8..40),
        bits in 2u8..=8,
        threads in 2usize..=8,
    ) {
        // Row-block quantization stitched with PackedMatrix::vstack must
        // reproduce the sequential packing byte-for-byte.
        let spec = QuantSpec::new(bits, 8);
        let seq = GroupQuantized::quantize(&m, spec);
        let par = GroupQuantized::quantize_with(&Pool::new(threads), &m, spec);
        prop_assert_eq!(seq.values().unpack(), par.values().unpack());
        prop_assert_eq!(seq.scales().as_slice(), par.scales().as_slice());
        prop_assert_eq!(
            seq.dequantize().as_slice(),
            par.dequantize_with(&Pool::new(threads)).as_slice()
        );
    }

    #[test]
    fn parallel_attention_heads_bit_identical(
        seed in 0u64..200,
        heads in 1usize..6,
        len in 1usize..10,
        q_rows in 1usize..4,
    ) {
        let hd = 8usize;
        let q_rows = q_rows.min(len); // queries may not exceed cached tokens
        let mut rng = atom_tensor::SeededRng::new(seed);
        let mut kv_heads = Vec::new();
        let mut q_heads = Vec::new();
        for _ in 0..heads {
            let mut h = QuantizedKvHead::new(hd, 8);
            h.append(
                &rng.normal_matrix(len, hd, 0.0, 1.0),
                &rng.normal_matrix(len, hd, 0.0, 1.0),
            );
            kv_heads.push(h);
            q_heads.push(rng.normal_matrix(q_rows, hd, 0.0, 1.0));
        }
        let scale = 1.0 / (hd as f32).sqrt();
        let solo =
            attention_quant_kv_heads_with(&Pool::sequential(), &q_heads, &kv_heads, scale).unwrap();
        for threads in [2usize, 4] {
            let par =
                attention_quant_kv_heads_with(&Pool::new(threads), &q_heads, &kv_heads, scale)
                    .unwrap();
            prop_assert_eq!(solo.len(), par.len());
            for (s, p) in solo.iter().zip(&par) {
                prop_assert_eq!(s.as_slice(), p.as_slice());
            }
        }
    }

    #[test]
    fn swar_unpack_bit_identical_to_scalar(
        bits in 2u8..=8,
        rows in 1usize..5,
        cols in 1usize..48,
        seed in 0u64..500,
    ) {
        // The SWAR row decode must reproduce the scalar reference decode
        // byte-for-byte at every bit width, including the non-multiple-of-
        // 16 (INT4) and non-multiple-of-8 (INT8) column tails.
        let mut rng = atom_tensor::SeededRng::new(seed);
        let lo = -(1i16 << (bits - 1)) as i32;
        let hi = (1i16 << (bits - 1)) as i32 - 1;
        let values: Vec<i8> = (0..rows * cols)
            .map(|_| (lo + rng.below((hi - lo + 1) as usize) as i32) as i8)
            .collect();
        let m = PackedMatrix::from_values(rows, cols, bits, &values);
        let mut scalar = vec![0i8; cols];
        let mut swar = vec![0i8; cols];
        for r in 0..rows {
            m.unpack_row_with(r, &mut scalar, KernelPath::Scalar);
            m.unpack_row_with(r, &mut swar, KernelPath::Swar);
            prop_assert_eq!(&scalar, &swar, "row {}", r);
        }
    }

    #[test]
    fn swar_gemm_bit_identical_to_scalar(
        seed in 0u64..300,
        m in 1usize..8,
        n in 1usize..10,
        k in 1usize..70,
        group in 1usize..80,
        bits in 2u8..=8,
    ) {
        // The tentpole contract: the SWAR weight-block kernel returns the
        // same bits as the scalar reference for random shapes, bit widths,
        // and group sizes (including ragged tail groups and group > k),
        // at thread widths 1, 2, and 8.
        let mut rng = atom_tensor::SeededRng::new(seed);
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let w = rng.normal_matrix(n, k, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(bits, group));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(bits, group));
        let scalar =
            fused_group_gemm_with_path(&Pool::sequential(), &qa, &qw, KernelPath::Scalar).unwrap();
        for threads in [1usize, 2, 8] {
            let swar =
                fused_group_gemm_with_path(&Pool::new(threads), &qa, &qw, KernelPath::Swar)
                    .unwrap();
            prop_assert_eq!(scalar.as_slice(), swar.as_slice(), "threads {}", threads);
        }
    }

    #[test]
    fn swar_mixed_gemm_bit_identical_to_scalar(
        seed in 0u64..200,
        m in 1usize..5,
        n in 1usize..6,
        groups in 1usize..3,
        outlier_cols in 1usize..24,
    ) {
        // The mixed-precision path: INT4 normal region + INT8 outlier
        // region, both regions on the selected path, FP32 region sum on the
        // caller thread — identical bytes scalar vs SWAR at widths 1/2/8.
        let k = groups * 16;
        let mut rng = atom_tensor::SeededRng::new(seed);
        let qa_n = GroupQuantized::quantize(&rng.normal_matrix(m, k, 0.0, 1.0), QuantSpec::new(4, 16));
        let qw_n = GroupQuantized::quantize(&rng.normal_matrix(n, k, 0.0, 0.5), QuantSpec::new(4, 16));
        let qa_o = GroupQuantized::quantize(
            &rng.normal_matrix(m, outlier_cols, 0.0, 20.0),
            QuantSpec::new(8, 16),
        );
        let qw_o = GroupQuantized::quantize(
            &rng.normal_matrix(n, outlier_cols, 0.0, 0.5),
            QuantSpec::new(8, 16),
        );
        let scalar = mixed_gemm_with_path(
            &Pool::sequential(), &qa_n, &qw_n, Some((&qa_o, &qw_o)), KernelPath::Scalar,
        ).unwrap();
        for threads in [1usize, 2, 8] {
            let swar = mixed_gemm_with_path(
                &Pool::new(threads), &qa_n, &qw_n, Some((&qa_o, &qw_o)), KernelPath::Swar,
            ).unwrap();
            prop_assert_eq!(scalar.as_slice(), swar.as_slice(), "threads {}", threads);
        }
    }

    #[test]
    fn swar_attention_bit_identical_to_scalar(
        seed in 0u64..300,
        len in 1usize..14,
        q_rows in 1usize..5,
        hd in 1usize..40,
        bits in 2u8..=8,
    ) {
        // Quantized-KV attention: the SWAR dequantize-on-load (with scratch
        // reuse) must match the scalar allocate-per-row decode exactly.
        let q_rows = q_rows.min(len);
        let mut rng = atom_tensor::SeededRng::new(seed);
        let mut kv = QuantizedKvHead::new(hd, bits);
        kv.append(
            &rng.normal_matrix(len, hd, 0.0, 1.0),
            &rng.normal_matrix(len, hd, 0.0, 1.0),
        );
        let q = rng.normal_matrix(q_rows, hd, 0.0, 1.0);
        let scale = 1.0 / (hd as f32).sqrt();
        let scalar = attention_quant_kv_path(&q, &kv, scale, KernelPath::Scalar);
        let swar = attention_quant_kv_path(&q, &kv, scale, KernelPath::Swar);
        prop_assert_eq!(scalar.as_slice(), swar.as_slice());
    }

    #[test]
    fn packed_bytes_monotone_in_bits(rows in 1usize..8, cols in 8usize..64) {
        let mut last = 0usize;
        for bits in 2u8..=8 {
            let m = PackedMatrix::zeros(rows, cols, bits);
            prop_assert!(m.packed_bytes() >= last);
            last = m.packed_bytes();
        }
    }

    #[test]
    fn effective_bits_at_least_nominal(m in matrix(2..4, 16..64), bits in 2u8..=8) {
        let q = GroupQuantized::quantize(&m, QuantSpec::new(bits, 16));
        prop_assert!(q.effective_bits() >= bits as f64 - 1e-9);
        // Scales add at most 16/group + packing slack.
        prop_assert!(q.effective_bits() <= bits as f64 + 16.0 / 16.0 + 8.0);
    }

    #[test]
    fn shared_scale_quantization_stays_on_grid(
        seed in 0u64..200,
        cols in 8usize..33,
    ) {
        let mut rng = atom_tensor::SeededRng::new(seed);
        let sample = rng.normal_matrix(16, cols, 0.0, 1.0);
        let spec = QuantSpec::new(4, 8);
        let shared = GroupQuantized::calibrate_shared_scales(&sample, spec);
        let live = rng.normal_matrix(4, cols, 0.0, 1.0);
        let q = GroupQuantized::quantize_with_shared_scales(&live, spec, &shared);
        // Every scale row equals the shared scales.
        for r in 0..q.scales().rows() {
            for (g, &sh) in shared.iter().enumerate() {
                let expect = atom_tensor::f16::round_f16(sh).max(f32::MIN_POSITIVE);
                prop_assert_eq!(q.scales()[(r, g)], expect);
            }
        }
    }
}
