//! Runtime selection between the SWAR fast path and the scalar reference.
//!
//! Every hot kernel ships two implementations that are proven bit-identical
//! by the property suite (`tests/properties.rs`, `tests/swar_identity.rs`):
//! a portable scalar loop — the oracle — and a SWAR loop built on the
//! [`crate::swar`] primitives. Dispatch is a [`KernelPath`] argument on the
//! `*_with_path` entry points; the plain entry points resolve the
//! process-wide default once from the `ATOM_KERNEL_PATH` environment
//! variable (`scalar` | `swar`, default `swar`).

use std::sync::OnceLock;

/// Which inner-kernel implementation the hot paths run.
///
/// # Example
///
/// ```
/// use atom_kernels::KernelPath;
///
/// assert_eq!(KernelPath::parse("scalar"), Some(KernelPath::Scalar));
/// assert_eq!(KernelPath::parse("SWAR"), Some(KernelPath::Swar));
/// assert_eq!(KernelPath::parse("simd"), None);
/// assert_eq!(KernelPath::Swar.label(), "swar");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// Portable scalar loops — the reference implementation the property
    /// tests trust as the oracle.
    Scalar,
    /// `u64` nibble-parallel SWAR loops with cache-blocked tiling —
    /// bit-identical to [`KernelPath::Scalar`], faster.
    Swar,
}

impl KernelPath {
    /// The process-wide default path, resolved once from the
    /// `ATOM_KERNEL_PATH` environment variable and cached for the lifetime
    /// of the process. Unset or unrecognised values select
    /// [`KernelPath::Swar`]; an unrecognised value additionally prints a
    /// one-time warning to stderr so a typo cannot silently skew a
    /// benchmark.
    #[must_use]
    pub fn current() -> KernelPath {
        static PATH: OnceLock<KernelPath> = OnceLock::new();
        *PATH.get_or_init(|| match std::env::var("ATOM_KERNEL_PATH") {
            Ok(raw) => KernelPath::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "ATOM_KERNEL_PATH={raw:?} not recognised (want \"scalar\" or \"swar\"); \
                     using the swar path"
                );
                KernelPath::Swar
            }),
            Err(_) => KernelPath::Swar,
        })
    }

    /// Parses a selector string: `"scalar"` or `"swar"`, case-insensitive,
    /// surrounding whitespace ignored. Returns `None` for anything else.
    #[must_use]
    pub fn parse(raw: &str) -> Option<KernelPath> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelPath::Scalar),
            "swar" => Some(KernelPath::Swar),
            _ => None,
        }
    }

    /// Stable lowercase label used in reports, benchmark tables, and
    /// telemetry breakdowns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Swar => "swar",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_labels_any_case() {
        assert_eq!(KernelPath::parse(" Scalar "), Some(KernelPath::Scalar));
        assert_eq!(KernelPath::parse("swar"), Some(KernelPath::Swar));
        assert_eq!(KernelPath::parse(""), None);
        assert_eq!(KernelPath::parse("sse2"), None);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for path in [KernelPath::Scalar, KernelPath::Swar] {
            assert_eq!(KernelPath::parse(path.label()), Some(path));
        }
    }

    #[test]
    fn current_is_stable_across_calls() {
        assert_eq!(KernelPath::current(), KernelPath::current());
    }
}
