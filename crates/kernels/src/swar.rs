//! SWAR (SIMD-within-a-register) unpack primitives for packed low-bit rows.
//!
//! One `u64` word holds 8 packed bytes — 16 INT4 codes or 8 INT8 codes —
//! and every lane decodes in parallel with three word-wide ops, instead of
//! one shift/mask/subtract chain per element. [`PackedMatrix`] stores the
//! *biased* code `raw = v + 2^(bits-1)`, which composes with the classic
//! two's-complement sign-extension identity `(x ^ 0b1000) - 0b1000` into a
//! plain per-lane subtract (see [`debias_nibble_lanes`]); the borrow-safe
//! form of that subtract is what these functions compute. The decoded
//! values are bit-identical to the scalar unpack in
//! [`PackedMatrix::unpack_row_with`] — the proptest oracle and a doc-test
//! below pin that down. DESIGN.md §"Kernel internals" derives the layout
//! and the identity in full.
//!
//! [`PackedMatrix`]: crate::PackedMatrix
//! [`PackedMatrix::unpack_row_with`]: crate::PackedMatrix::unpack_row_with

/// INT4 codes decoded per SWAR word (two per packed byte).
pub const INT4_LANES: usize = 16;
/// INT8 codes decoded per SWAR word (one per packed byte).
pub const INT8_LANES: usize = 8;
/// Packed payload bytes per SWAR word.
pub const WORD_BYTES: usize = 8;

/// Low nibble of every byte lane.
const LO_NIBBLES: u64 = 0x0F0F_0F0F_0F0F_0F0F;
/// Bit 7 of every byte lane — the INT8 bias and the borrow sentinel.
const SIGN_BITS: u64 = 0x8080_8080_8080_8080;
/// The INT4 bias `8` replicated into every byte lane.
const NIBBLE_BIAS: u64 = 0x0808_0808_0808_0808;

/// Subtracts the INT4 bias `8` from each of the 8 byte lanes of `v` in
/// parallel, producing the two's-complement value of each lane.
///
/// Every lane must hold a biased nibble `raw = v + 8` in `0..=15` (bits
/// 4..=7 clear). The storage bias makes `raw = t ^ 8` where `t` is the
/// code's 4-bit two's-complement pattern, so the textbook sign-extension
/// `(t ^ 0x08) - 0x08` collapses to `raw - 8`. The per-lane subtract is
/// made borrow-safe by setting bit 7 of every lane first (`raw <= 15 < 2^7`
/// means the borrow never reaches bit 7, so lanes cannot contaminate each
/// other) and then XOR-ing the same bit pattern out again, which also
/// repairs the sign bit: lanes with `raw < 8` come out with bit 7 set —
/// exactly the two's-complement encoding of `raw - 8 < 0`.
///
/// # Example
///
/// ```
/// use atom_kernels::swar::debias_nibble_lanes;
///
/// // Lanes 0..8 hold biased codes 0, 8, 15, 7, 1, 9, 14, 6.
/// let v = u64::from_le_bytes([0, 8, 15, 7, 1, 9, 14, 6]);
/// let out = debias_nibble_lanes(v).to_le_bytes();
/// let decoded: Vec<i8> = out.iter().map(|&b| i8::from_le_bytes([b])).collect();
/// assert_eq!(decoded, [-8, 0, 7, -1, -7, 1, 6, -2]);
/// ```
#[inline]
#[must_use]
pub fn debias_nibble_lanes(v: u64) -> u64 {
    debug_assert_eq!(v & !LO_NIBBLES, 0, "lanes must hold masked nibbles");
    ((v | SIGN_BITS).wrapping_sub(NIBBLE_BIAS)) ^ SIGN_BITS
}

/// Subtracts the INT8 bias `128` from each of the 8 byte lanes of `v` in
/// parallel. Subtracting `2^7` modulo `2^8` is exactly flipping bit 7, so
/// the whole 8-lane debias is one XOR.
///
/// # Example
///
/// ```
/// use atom_kernels::swar::debias_byte_lanes;
///
/// let v = u64::from_le_bytes([0, 128, 255, 127, 1, 129, 254, 126]);
/// let out = debias_byte_lanes(v).to_le_bytes();
/// let decoded: Vec<i8> = out.iter().map(|&b| i8::from_le_bytes([b])).collect();
/// assert_eq!(decoded, [-128, 0, 127, -1, -127, 1, 126, -2]);
/// ```
#[inline]
#[must_use]
pub fn debias_byte_lanes(v: u64) -> u64 {
    v ^ SIGN_BITS
}

/// Decodes one SWAR word of packed INT4 payload — 8 bytes, 16 biased
/// nibble codes, low nibble first within each byte — into 16 sign-extended
/// `i8` values in column order.
#[inline]
#[must_use]
pub fn unpack_word_i4(bytes: [u8; WORD_BYTES]) -> [i8; INT4_LANES] {
    let word = u64::from_le_bytes(bytes);
    let lo = debias_nibble_lanes(word & LO_NIBBLES).to_le_bytes();
    let hi = debias_nibble_lanes((word >> 4) & LO_NIBBLES).to_le_bytes();
    let mut out = [0i8; INT4_LANES];
    // Byte b of the word contributes columns 2b (low nibble) and 2b+1
    // (high nibble): interleave the two debiased words back together.
    let interleaved = lo.iter().zip(&hi).flat_map(|(&l, &h)| [l, h]);
    for (o, b) in out.iter_mut().zip(interleaved) {
        *o = i8::from_le_bytes([b]);
    }
    out
}

/// Decodes one SWAR word of packed INT8 payload — 8 biased byte codes —
/// into 8 sign-extended `i8` values in column order.
#[inline]
#[must_use]
pub fn unpack_word_i8(bytes: [u8; WORD_BYTES]) -> [i8; INT8_LANES] {
    let lanes = debias_byte_lanes(u64::from_le_bytes(bytes)).to_le_bytes();
    let mut out = [0i8; INT8_LANES];
    for (o, &b) in out.iter_mut().zip(&lanes) {
        *o = i8::from_le_bytes([b]);
    }
    out
}

/// Decodes a packed INT4 row (two biased codes per byte, low nibble first)
/// into `out.len()` sign-extended values: full 16-lane SWAR words first,
/// then a scalar tail for the final partial word — the tail decode is the
/// same arithmetic, so the whole row is bit-identical to the scalar path.
///
/// `row` must carry at least `out.len().div_ceil(2)` payload bytes;
/// missing bytes decode as zeros (an unreachable backstop, kept total so
/// the kernel hot path stays panic-free).
pub fn unpack_row_i4(row: &[u8], out: &mut [i8]) {
    debug_assert!(row.len() >= out.len().div_ceil(2), "payload too short");
    let words = out.len() / INT4_LANES;
    let (head, tail) = out.split_at_mut(words * INT4_LANES);
    let head_bytes = row.get(..words * WORD_BYTES).unwrap_or(&[]);
    for (blk, dst) in head_bytes
        .chunks_exact(WORD_BYTES)
        .zip(head.chunks_exact_mut(INT4_LANES))
    {
        let word = blk.try_into().unwrap_or([0u8; WORD_BYTES]);
        dst.copy_from_slice(&unpack_word_i4(word));
    }
    // Tail: fewer than 16 columns left; decode byte pairs scalar-style.
    let tail_bytes = row.get(words * WORD_BYTES..).unwrap_or(&[]);
    for (pair, &b) in tail.chunks_mut(2).zip(tail_bytes) {
        for (k, o) in pair.iter_mut().enumerate() {
            let raw = if k == 0 { b & 0x0F } else { b >> 4 };
            // raw <= 15, so the subtract never wraps; `wrapping_sub` states
            // the (unreachable) overflow contract without a checked branch.
            *o = i8::from_le_bytes([raw]).wrapping_sub(8);
        }
    }
}

/// Decodes a packed INT8 row (one biased code per byte) into `out.len()`
/// sign-extended values: full 8-lane SWAR words, then a scalar tail.
///
/// `row` must carry at least `out.len()` payload bytes; missing bytes
/// decode as zeros (unreachable backstop, kept total).
pub fn unpack_row_i8(row: &[u8], out: &mut [i8]) {
    debug_assert!(row.len() >= out.len(), "payload too short");
    let words = out.len() / INT8_LANES;
    let (head, tail) = out.split_at_mut(words * INT8_LANES);
    let head_bytes = row.get(..words * WORD_BYTES).unwrap_or(&[]);
    for (blk, dst) in head_bytes
        .chunks_exact(WORD_BYTES)
        .zip(head.chunks_exact_mut(INT8_LANES))
    {
        let word = blk.try_into().unwrap_or([0u8; WORD_BYTES]);
        dst.copy_from_slice(&unpack_word_i8(word));
    }
    let tail_bytes = row.get(words * WORD_BYTES..).unwrap_or(&[]);
    for (o, &b) in tail.iter_mut().zip(tail_bytes) {
        // Single-lane [`debias_byte_lanes`]: flipping bit 7 is the
        // carry-free form of subtracting the +128 storage bias.
        *o = i8::from_le_bytes([b ^ 0x80]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_debias_covers_all_codes() {
        for raw in 0u8..16 {
            let word = u64::from(raw) * 0x0101_0101_0101_0101; // every lane
            let out = debias_nibble_lanes(word).to_le_bytes();
            for b in out {
                assert_eq!(i8::from_le_bytes([b]), i8::from_le_bytes([raw]).wrapping_sub(8));
            }
        }
    }

    #[test]
    fn byte_debias_covers_all_codes() {
        for raw in 0u16..256 {
            let b = (raw & 0xFF) as u8;
            let out = debias_byte_lanes(u64::from(b)).to_le_bytes();
            let expect = (i16::from(b) - 128) as i8;
            assert_eq!(i8::from_le_bytes([out[0]]), expect, "raw {b}");
        }
    }

    #[test]
    fn word_unpack_interleaves_nibbles_low_first() {
        // Byte 0xA3 holds code 3 (low nibble, column 0) then 0xA (column 1).
        let out = unpack_word_i4([0xA3; 8]);
        for pair in out.chunks(2) {
            assert_eq!(pair, [3 - 8, 0xA - 8]);
        }
    }

    #[test]
    fn row_unpack_handles_ragged_tails() {
        // 37 columns: 2 full SWAR words + 5-column tail (2.5 bytes).
        let cols = 37usize;
        let codes: Vec<u8> = (0..cols).map(|c| (c % 16) as u8).collect();
        let mut packed = vec![0u8; cols.div_ceil(2)];
        for (c, &q) in codes.iter().enumerate() {
            packed[c / 2] |= q << (4 * (c % 2));
        }
        let mut out = vec![0i8; cols];
        unpack_row_i4(&packed, &mut out);
        let expect: Vec<i8> = codes
            .iter()
            .map(|&q| i8::from_le_bytes([q]).wrapping_sub(8))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn row_unpack_i8_matches_scalar() {
        let codes: Vec<u8> = (0..21u8).map(|c| c.wrapping_mul(37)).collect();
        let mut out = vec![0i8; codes.len()];
        unpack_row_i8(&codes, &mut out);
        let expect: Vec<i8> = codes.iter().map(|&b| ((i16::from(b)) - 128) as i8).collect();
        assert_eq!(out, expect);
    }
}
