//! Asymmetric per-row quantized containers for the KV-cache (paper §4.4).
//!
//! The KV-cache is quantized *asymmetrically* because — unlike the dense
//! GEMM operands — its dequantization happens on load, before an FP16
//! computation, so zero points cost no extra integer cross-terms (§2). The
//! paper uses attention-head granularity: each `(token, head)` vector gets
//! its own scale and zero point. Here one [`AsymQuantized`] holds one head's
//! rows, so each row is exactly one `(token, head)` quantization group.

use crate::packed::PackedMatrix;
use crate::path::KernelPath;
use atom_tensor::f16::round_f16;
use atom_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Asymmetrically quantized matrix with one `(scale, zero)` pair per row.
///
/// Follows the paper's uniform asymmetric formula (§2) in the equivalent
/// affine `(scale, min)` form, which keeps constant rows exact and offsets
/// lossless (the integer zero point `z = -min/s` is folded into the stored
/// minimum):
///
/// ```text
/// s = (max(X) - min(X)) / (2^n - 1)
/// q = clamp(round((x - min) / s), 0, 2^n - 1)
/// x' = min + s * q
/// ```
///
/// # Example
///
/// ```
/// use atom_kernels::AsymQuantized;
/// use atom_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
/// let q = AsymQuantized::quantize(&x, 4);
/// assert!(q.dequantize().mse(&x) < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsymQuantized {
    bits: u8,
    /// Unsigned codes stored biased into the signed packed container.
    codes: PackedMatrix,
    /// Per-row scale (f16-rounded).
    scales: Vec<f32>,
    /// Per-row minimum (f16-rounded); plays the role of the zero point.
    mins: Vec<f32>,
}

impl AsymQuantized {
    /// Quantizes each row of `x` asymmetrically at `bits` precision.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8`.
    pub fn quantize(x: &Matrix, bits: u8) -> Self {
        assert!(
            (crate::group::MIN_BITS..=crate::group::MAX_BITS).contains(&bits),
            "bits must be in {}..={}",
            crate::group::MIN_BITS,
            crate::group::MAX_BITS
        );
        let (rows, cols) = x.shape();
        let levels = ((1u32 << bits) - 1) as f32;
        let bias = 1i16 << (bits - 1); // shift unsigned codes into signed storage
        let mut codes = PackedMatrix::zeros(rows, cols, bits);
        let mut scales = Vec::with_capacity(rows);
        let mut mins = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if !lo.is_finite() || !hi.is_finite() {
                lo = 0.0;
                hi = 0.0;
            }
            let lo = round_f16(lo);
            let mut s = (hi - lo) / levels;
            if s <= 0.0 {
                s = 1.0;
            }
            s = round_f16(s).max(f32::MIN_POSITIVE);
            scales.push(s);
            mins.push(lo);
            for (c, &v) in row.iter().enumerate() {
                let q = (((v - lo) / s).round()).clamp(0.0, levels) as i16;
                codes.set(r, c, (q - bias) as i8);
            }
        }
        AsymQuantized {
            bits,
            codes,
            scales,
            mins,
        }
    }

    /// Bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.codes.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.codes.cols()
    }

    /// Dequantizes every row.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), self.cols());
        let mut buf = vec![0i8; self.cols()];
        let bias = (1i16 << (self.bits - 1)) as f32;
        for (r, (&s, &lo)) in self.scales.iter().zip(self.mins.iter()).enumerate() {
            self.codes.unpack_row(r, &mut buf);
            for (d, &q) in out.row_mut(r).iter_mut().zip(buf.iter()) {
                *d = lo + s * (f32::from(q) + bias);
            }
        }
        out
    }

    /// Dequantizes a single row into a caller buffer (the attention kernel's
    /// dequantize-on-load path).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.cols()`. A row index out of range is a
    /// caller bug: it trips a debug assertion under test and writes zeros in
    /// release builds.
    pub fn dequantize_row_into(&self, r: usize, out: &mut [f32]) {
        self.dequantize_row_into_with(r, out, KernelPath::current());
    }

    /// [`dequantize_row_into`](Self::dequantize_row_into) with an explicit
    /// [`KernelPath`] for the code unpack. The affine decode itself is the
    /// same FP arithmetic either way, so both paths produce bit-identical
    /// rows.
    ///
    /// # Panics
    ///
    /// As [`dequantize_row_into`](Self::dequantize_row_into).
    pub fn dequantize_row_into_with(&self, r: usize, out: &mut [f32], path: KernelPath) {
        assert_eq!(out.len(), self.cols(), "buffer size mismatch");
        let (Some(&s), Some(&lo)) = (self.scales.get(r), self.mins.get(r)) else {
            debug_assert!(false, "row {r} out of range");
            out.fill(0.0);
            return;
        };
        let mut buf = vec![0i8; self.cols()];
        self.codes.unpack_row_with(r, &mut buf, path);
        let bias = (1i16 << (self.bits - 1)) as f32;
        for (d, &q) in out.iter_mut().zip(buf.iter()) {
            *d = lo + s * (f32::from(q) + bias);
        }
    }

    /// [`dequantize_row_into_with`](Self::dequantize_row_into_with) reusing
    /// a caller-owned code scratch buffer, so a loop over many rows (the
    /// attention score/value sweeps, KV materialization) performs no per-row
    /// allocation. `codes` is resized to `self.cols()` on every call; its
    /// prior contents are irrelevant. Output bytes are identical to the
    /// allocating variant.
    ///
    /// # Example
    ///
    /// ```
    /// use atom_kernels::{AsymQuantized, KernelPath};
    /// use atom_tensor::Matrix;
    ///
    /// let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[-1.0, 0.5, 2.0, 8.0]]);
    /// let q = AsymQuantized::quantize(&x, 4);
    /// let mut scratch = Vec::new();
    /// let mut a = vec![0.0f32; 4];
    /// let mut b = vec![0.0f32; 4];
    /// q.dequantize_row_scratch(1, &mut a, &mut scratch, KernelPath::Swar);
    /// q.dequantize_row_into(1, &mut b);
    /// assert_eq!(a, b);
    /// ```
    ///
    /// # Panics
    ///
    /// As [`dequantize_row_into`](Self::dequantize_row_into).
    pub fn dequantize_row_scratch(
        &self,
        r: usize,
        out: &mut [f32],
        codes: &mut Vec<i8>,
        path: KernelPath,
    ) {
        assert_eq!(out.len(), self.cols(), "buffer size mismatch");
        let (Some(&s), Some(&lo)) = (self.scales.get(r), self.mins.get(r)) else {
            debug_assert!(false, "row {r} out of range");
            out.fill(0.0);
            return;
        };
        codes.clear();
        codes.resize(self.cols(), 0);
        self.codes.unpack_row_with(r, codes, path);
        let bias = (1i16 << (self.bits - 1)) as f32;
        for (d, &q) in out.iter_mut().zip(codes.iter()) {
            *d = lo + s * (f32::from(q) + bias);
        }
    }

    /// Appends the rows of `x`, quantizing them on the way in.
    pub fn append_rows(&mut self, x: &Matrix) {
        assert_eq!(x.cols(), self.cols(), "append width mismatch");
        let added = AsymQuantized::quantize(x, self.bits);
        let mut merged = PackedMatrix::zeros(self.rows() + added.rows(), self.cols(), self.bits);
        let mut buf = vec![0i8; self.cols()];
        for r in 0..self.rows() {
            self.codes.unpack_row(r, &mut buf);
            for (c, &v) in buf.iter().enumerate() {
                merged.set(r, c, v);
            }
        }
        for r in 0..added.rows() {
            added.codes.unpack_row(r, &mut buf);
            for (c, &v) in buf.iter().enumerate() {
                merged.set(self.rows() + r, c, v);
            }
        }
        self.codes = merged;
        self.scales.extend_from_slice(&added.scales);
        self.mins.extend_from_slice(&added.mins);
    }

    /// Truncates to the first `rows` rows, dropping later codes and their
    /// scale/minimum pairs. A no-op when `rows >= self.rows()`.
    ///
    /// Because quantization is strictly per row, the surviving rows keep the
    /// exact codes/scales/mins they were written with — truncation is
    /// bit-identical to never having appended the dropped rows (the prefix
    /// cache relies on this when replaying a KV snapshot cut mid-sequence).
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows >= self.rows() {
            return;
        }
        let mut trimmed = PackedMatrix::zeros(rows, self.cols(), self.bits);
        let mut buf = vec![0i8; self.cols()];
        for r in 0..rows {
            self.codes.unpack_row(r, &mut buf);
            for (c, &v) in buf.iter().enumerate() {
                trimmed.set(r, c, v);
            }
        }
        self.codes = trimmed;
        self.scales.truncate(rows);
        self.mins.truncate(rows);
    }

    /// Real memory footprint: packed codes plus 16-bit scale and minimum
    /// per row.
    pub fn packed_bytes(&self) -> usize {
        self.codes.packed_bytes() + self.scales.len() * 2 + self.mins.len() * 2
    }

    /// Creates an empty container of width `cols`.
    pub fn empty(cols: usize, bits: u8) -> Self {
        AsymQuantized {
            bits,
            codes: PackedMatrix::zeros(0, cols, bits),
            scales: Vec::new(),
            mins: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    #[test]
    fn asym_beats_symmetric_on_shifted_data() {
        // Data with a large positive offset wastes half the symmetric grid.
        let mut rng = SeededRng::new(1);
        let mut x = rng.normal_matrix(4, 32, 0.0, 0.1);
        for v in x.as_mut_slice() {
            *v += 5.0;
        }
        let asym = AsymQuantized::quantize(&x, 4).dequantize().mse(&x);
        let sym = crate::group::fake_quantize(&x, crate::group::QuantSpec::new(4, usize::MAX))
            .mse(&x);
        assert!(asym < sym / 2.0, "asym {asym} vs sym {sym}");
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let mut rng = SeededRng::new(2);
        let x = rng.uniform_matrix(6, 16, -3.0, 7.0);
        let q = AsymQuantized::quantize(&x, 8);
        let d = q.dequantize();
        for r in 0..x.rows() {
            let range: f32 = 10.0; // hi - lo upper bound
            let step = range / 255.0;
            for (a, b) in x.row(r).iter().zip(d.row(r)) {
                assert!((a - b).abs() <= step, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn constant_rows_are_exact() {
        let x = Matrix::full(3, 8, 2.5);
        let q = AsymQuantized::quantize(&x, 4);
        let d = q.dequantize();
        for (a, b) in x.as_slice().iter().zip(d.as_slice()) {
            assert!((a - b).abs() < 2.5 * 2.0f32.powi(-10), "{a} vs {b}");
        }
    }

    #[test]
    fn append_rows_matches_fresh_quantization() {
        let mut rng = SeededRng::new(3);
        let a = rng.normal_matrix(2, 8, 0.0, 1.0);
        let b = rng.normal_matrix(3, 8, 2.0, 0.5);
        let mut grown = AsymQuantized::quantize(&a, 4);
        grown.append_rows(&b);
        assert_eq!(grown.rows(), 5);
        let fresh_b = AsymQuantized::quantize(&b, 4);
        let gd = grown.dequantize();
        let bd = fresh_b.dequantize();
        for r in 0..3 {
            assert_eq!(gd.row(2 + r), bd.row(r));
        }
    }

    #[test]
    fn dequantize_row_into_matches_full() {
        let mut rng = SeededRng::new(4);
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let q = AsymQuantized::quantize(&x, 4);
        let full = q.dequantize();
        let mut buf = vec![0.0f32; 8];
        for r in 0..4 {
            q.dequantize_row_into(r, &mut buf);
            assert_eq!(&buf[..], full.row(r));
        }
    }

    #[test]
    fn bytes_shrink_with_bits() {
        let mut rng = SeededRng::new(5);
        let x = rng.normal_matrix(16, 64, 0.0, 1.0);
        let b4 = AsymQuantized::quantize(&x, 4).packed_bytes();
        let b8 = AsymQuantized::quantize(&x, 8).packed_bytes();
        assert!(b4 * 2 <= b8 + 64 * 4);
    }

    #[test]
    fn truncate_rows_is_bit_identical_to_short_history() {
        let mut rng = SeededRng::new(6);
        let a = rng.normal_matrix(3, 8, 0.0, 1.0);
        let b = rng.normal_matrix(4, 8, 1.0, 0.5);
        let mut grown = AsymQuantized::quantize(&a, 4);
        grown.append_rows(&b);
        grown.truncate_rows(3);
        let fresh = AsymQuantized::quantize(&a, 4);
        assert_eq!(grown, fresh);
        // Truncating past the end changes nothing.
        grown.truncate_rows(99);
        assert_eq!(grown, fresh);
    }

    #[test]
    fn empty_container_appends() {
        let mut q = AsymQuantized::empty(8, 4);
        assert_eq!(q.rows(), 0);
        q.append_rows(&Matrix::full(2, 8, 1.0));
        assert_eq!(q.rows(), 2);
    }
}
