//! Symmetric per-group quantized tensors — the operand format of Atom's
//! fused GEMM (paper §4.2).
//!
//! A [`GroupQuantized`] matrix divides every row (channel dimension last,
//! as in the paper) into contiguous groups of `group` elements, each with
//! its own FP16 scale. Quantization is symmetric with the paper's formula
//! (§2):
//!
//! ```text
//! s = 2 * max|X| / (2^n - 1) * c        (c = clipping factor)
//! q = clamp(round(x / s), -2^(n-1), 2^(n-1) - 1)
//! ```
//!
//! The same container stores weights (quantized offline) and activations
//! (quantized dynamically per token, §4.3) — exactly like the GPU pipeline,
//! where one format feeds the INT4/INT8 tensor-core MMA.

use crate::packed::PackedMatrix;
use atom_parallel::Pool;
use atom_tensor::f16::round_f16;
use atom_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Smallest quantizer width any spec may carry. Together with
/// [`MAX_BITS`] this bounds every `bits` value in the workspace —
/// `QuantSpec::validate` (and the asserts at the other quantizer entry
/// points) enforce it at runtime, and `atom-lint`'s interval analysis
/// assumes exactly this range when proving shift/accumulator bounds.
pub const MIN_BITS: u8 = 2;
/// Largest quantizer width any spec may carry; see [`MIN_BITS`].
pub const MAX_BITS: u8 = 8;

/// Parameters of a symmetric group quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantSpec {
    /// Bit width ([`MIN_BITS`]–[`MAX_BITS`]).
    pub bits: u8,
    /// Group size along the channel dimension; the final group of a row may
    /// be smaller if `cols % group != 0`. Use `usize::MAX` for per-channel
    /// (one group spanning the whole row).
    pub group: usize,
    /// Clipping factor `c` in `(0, 1]` shrinking the quantization range.
    pub clip: f32,
}

impl QuantSpec {
    /// Spec with the given bits, group size, and no clipping.
    pub fn new(bits: u8, group: usize) -> Self {
        QuantSpec {
            bits,
            group,
            clip: 1.0,
        }
    }

    /// Returns a copy with the clipping factor set.
    pub fn with_clip(mut self, clip: f32) -> Self {
        self.clip = clip;
        self
    }

    /// Number of groups needed for `cols` channels.
    pub fn groups_for(&self, cols: usize) -> usize {
        if self.group == usize::MAX {
            return usize::from(cols > 0);
        }
        cols.div_ceil(self.group)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message when bits or clip are out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(MIN_BITS..=MAX_BITS).contains(&self.bits) {
            return Err(format!(
                "bits {} out of {MIN_BITS}..={MAX_BITS}",
                self.bits
            ));
        }
        if self.group == 0 {
            return Err("group must be positive".into());
        }
        if !(self.clip > 0.0 && self.clip <= 1.0) {
            return Err(format!("clip {} out of (0, 1]", self.clip));
        }
        Ok(())
    }
}

/// A symmetric group-quantized matrix: packed integers plus one FP16 scale
/// per `(row, group)`.
///
/// # Example
///
/// ```
/// use atom_kernels::{GroupQuantized, QuantSpec};
/// use atom_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.1, -0.5, 2.0, 0.7]]);
/// let q = GroupQuantized::quantize(&x, QuantSpec::new(4, 2));
/// let err = q.dequantize().mse(&x);
/// assert!(err < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupQuantized {
    spec: QuantSpec,
    values: PackedMatrix,
    /// `rows x n_groups` scales, rounded to the f16 grid.
    scales: Matrix,
}

impl GroupQuantized {
    /// Quantizes `x` row-wise with the paper's symmetric formula.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn quantize(x: &Matrix, spec: QuantSpec) -> Self {
        // lint: allow(panic-freedom) — documented `# Panics` contract: an invalid spec is a programmer error, not a data condition
        spec.validate().expect("invalid quant spec");
        let (rows, cols) = x.shape();
        let group = spec.group.min(cols.max(1));
        let n_groups = spec.groups_for(cols);
        let qmax_pos = ((1i32 << (spec.bits - 1)) - 1) as f32;
        let qmin = -(1i32 << (spec.bits - 1)) as f32;
        let levels = ((1i32 << spec.bits) - 1) as f32;

        let mut values = PackedMatrix::zeros(rows, cols, spec.bits);
        let mut scales = Matrix::zeros(rows, n_groups);
        for r in 0..rows {
            // `chunks(group)` walks exactly the `n_groups` per-row groups
            // (final chunk ragged), so the group index never leaves range.
            let row = x.row(r);
            let scale_row = scales.row_mut(r);
            for (g, (chunk, s_out)) in row.chunks(group).zip(scale_row.iter_mut()).enumerate() {
                let amax = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                // Paper §2: s = 2 max|X| c / (2^n - 1).
                let mut s = 2.0 * amax * spec.clip / levels;
                if s <= 0.0 {
                    s = 1.0; // all-zero group: any scale decodes to zeros
                }
                s = round_f16(s).max(f32::MIN_POSITIVE);
                *s_out = s;
                for (off, &v) in chunk.iter().enumerate() {
                    let q = (v / s).round().clamp(qmin, qmax_pos) as i8;
                    values.set(r, g * group + off, q);
                }
            }
        }
        GroupQuantized {
            spec,
            values,
            scales,
        }
    }

    /// [`quantize`](Self::quantize) parallelized over row-blocks on `pool`.
    ///
    /// Every row quantizes independently (per-token dynamic quantization,
    /// §4.3), so the per-block results reassemble — packed payload via
    /// [`PackedMatrix::vstack`], scales via [`Matrix::vstack`] — into
    /// exactly the bytes the sequential quantizer writes, for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (same contract as
    /// [`quantize`](Self::quantize)).
    pub fn quantize_with(pool: &Pool, x: &Matrix, spec: QuantSpec) -> Self {
        let rows = x.rows();
        if pool.is_sequential() || rows <= 1 || spec.validate().is_err() {
            // The invalid-spec case funnels into `quantize` so the
            // documented panic fires on the caller thread, not a worker.
            return Self::quantize(x, spec);
        }
        let block = rows.div_ceil(pool.threads().min(rows));
        let starts: Vec<usize> = (0..rows).step_by(block.max(1)).collect();
        let blocks = pool.par_map(&starts, |_, &s| {
            Self::quantize(&x.slice_rows(s, (s + block).min(rows)), spec)
        });
        let stitched = blocks.ok().and_then(|bs| {
            let values =
                PackedMatrix::vstack(&bs.iter().map(|b| b.values.clone()).collect::<Vec<_>>())?;
            let scales = bs
                .iter()
                .map(|b| &b.scales)
                .fold(None::<Matrix>, |acc, s| match acc {
                    None => Some(s.clone()),
                    Some(a) => Some(a.vstack(s)),
                })?;
            Some(GroupQuantized {
                spec,
                values,
                scales,
            })
        });
        // The fallback arm is an unreachable backstop (blocks cover every
        // row and share cols/bits); it keeps this path total.
        stitched.unwrap_or_else(|| Self::quantize(x, spec))
    }

    /// The quantization spec.
    pub fn spec(&self) -> QuantSpec {
        self.spec
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Number of columns (channels).
    pub fn cols(&self) -> usize {
        self.values.cols()
    }

    /// The packed integer payload.
    pub fn values(&self) -> &PackedMatrix {
        &self.values
    }

    /// The `rows x n_groups` scale matrix.
    pub fn scales(&self) -> &Matrix {
        &self.scales
    }

    /// Builds a container from pre-computed integers and scales (used by
    /// GPTQ, which chooses the integers itself).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the spec.
    pub fn from_parts(spec: QuantSpec, values: PackedMatrix, scales: Matrix) -> Self {
        // lint: allow(panic-freedom) — documented `# Panics` contract: an invalid spec is a programmer error, not a data condition
        spec.validate().expect("invalid quant spec");
        assert_eq!(values.bits(), spec.bits, "payload bit width mismatch");
        assert_eq!(scales.rows(), values.rows(), "scale rows mismatch");
        assert_eq!(
            scales.cols(),
            spec.groups_for(values.cols()),
            "scale group count mismatch"
        );
        GroupQuantized {
            spec,
            values,
            scales,
        }
    }

    /// Quantizes `x` with *pre-computed* per-group scales shared by every
    /// row — the static-quantization variant the paper argues against in
    /// §4.3 (scales come from calibration instead of the live input).
    ///
    /// # Panics
    ///
    /// Panics if `scales.len()` does not match the group count or contains
    /// non-positive values.
    pub fn quantize_with_shared_scales(x: &Matrix, spec: QuantSpec, shared: &[f32]) -> Self {
        // lint: allow(panic-freedom) — documented `# Panics` contract: an invalid spec is a programmer error, not a data condition
        spec.validate().expect("invalid quant spec");
        let (rows, cols) = x.shape();
        let group = spec.group.min(cols.max(1));
        let n_groups = spec.groups_for(cols);
        assert_eq!(shared.len(), n_groups, "shared scale count mismatch");
        assert!(shared.iter().all(|&s| s > 0.0), "scales must be positive");
        let qmax_pos = ((1i32 << (spec.bits - 1)) - 1) as f32;
        let qmin = -(1i32 << (spec.bits - 1)) as f32;
        let mut values = PackedMatrix::zeros(rows, cols, spec.bits);
        let mut scales = Matrix::zeros(rows, n_groups);
        for r in 0..rows {
            let row = x.row(r);
            let scale_row = scales.row_mut(r);
            for (g, ((chunk, s_out), &shared_s)) in row
                .chunks(group)
                .zip(scale_row.iter_mut())
                .zip(shared)
                .enumerate()
            {
                let s = round_f16(shared_s).max(f32::MIN_POSITIVE);
                *s_out = s;
                for (off, &v) in chunk.iter().enumerate() {
                    let q = (v / s).round().clamp(qmin, qmax_pos) as i8;
                    values.set(r, g * group + off, q);
                }
            }
        }
        GroupQuantized {
            spec,
            values,
            scales,
        }
    }

    /// Per-group scales that map a calibration sample's maxima onto the
    /// grid — the offline half of static quantization. Returns one scale
    /// per group.
    pub fn calibrate_shared_scales(sample: &Matrix, spec: QuantSpec) -> Vec<f32> {
        let cols = sample.cols();
        let group = spec.group.min(cols.max(1));
        let n_groups = spec.groups_for(cols);
        let levels = ((1i32 << spec.bits) - 1) as f32;
        let mut amax = vec![0.0f32; n_groups];
        for row in sample.iter_rows() {
            for (m, chunk) in amax.iter_mut().zip(row.chunks(group.max(1))) {
                for &v in chunk {
                    *m = m.max(v.abs());
                }
            }
        }
        amax.into_iter()
            .map(|a| {
                let s = 2.0 * a * spec.clip / levels;
                round_f16(if s > 0.0 { s } else { 1.0 }).max(f32::MIN_POSITIVE)
            })
            .collect()
    }

    /// Dequantizes to f32.
    pub fn dequantize(&self) -> Matrix {
        let (rows, cols) = (self.rows(), self.cols());
        let group = self.spec.group.min(cols.max(1));
        let mut out = Matrix::zeros(rows, cols);
        let mut buf = vec![0i8; cols];
        for r in 0..rows {
            self.values.unpack_row(r, &mut buf);
            let dst = out.row_mut(r);
            let scale_row = self.scales.row(r);
            for ((qchunk, dchunk), &s) in buf
                .chunks(group)
                .zip(dst.chunks_mut(group))
                .zip(scale_row)
            {
                for (&q, d) in qchunk.iter().zip(dchunk) {
                    *d = f32::from(q) * s;
                }
            }
        }
        out
    }

    /// [`dequantize`](Self::dequantize) parallelized over rows on `pool`;
    /// each row decodes into its own disjoint output span, so the result is
    /// bit-identical to the sequential dequantize for any thread count.
    pub fn dequantize_with(&self, pool: &Pool) -> Matrix {
        let (rows, cols) = (self.rows(), self.cols());
        let group = self.spec.group.min(cols.max(1)).max(1);
        let mut out = Matrix::zeros(rows, cols);
        let ok = pool
            .par_chunks_mut(out.as_mut_slice(), cols.max(1), |r, dst| {
                let mut buf = vec![0i8; cols];
                self.values.unpack_row(r, &mut buf);
                let scale_row = self.scales.row(r);
                for ((qchunk, dchunk), &s) in buf
                    .chunks(group)
                    .zip(dst.chunks_mut(group))
                    .zip(scale_row)
                {
                    for (&q, d) in qchunk.iter().zip(dchunk) {
                        *d = f32::from(q) * s;
                    }
                }
            })
            .is_ok();
        // Unreachable backstop: the closure is total for every row index.
        if ok {
            out
        } else {
            self.dequantize()
        }
    }

    /// Real memory footprint: packed integers plus 16-bit scales.
    pub fn packed_bytes(&self) -> usize {
        self.values.packed_bytes() + self.scales.len() * 2
    }

    /// Effective bits per element including scales (paper §4.2 defines
    /// `effective bit` as the average bits per element counting
    /// quantization parameters).
    pub fn effective_bits(&self) -> f64 {
        8.0 * self.packed_bytes() as f64 / (self.rows() * self.cols()) as f64
    }
}

/// Convenience: quantize then immediately dequantize ("fake quantization"),
/// the standard tool for accuracy ablations.
pub fn fake_quantize(x: &Matrix, spec: QuantSpec) -> Matrix {
    GroupQuantized::quantize(x, spec).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    #[test]
    fn roundtrip_error_shrinks_with_bits() {
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(8, 64, 0.0, 1.0);
        let mut last = f64::INFINITY;
        for bits in [2u8, 3, 4, 6, 8] {
            let err = fake_quantize(&x, QuantSpec::new(bits, 16)).mse(&x);
            assert!(err < last, "error should drop with bits: {bits} -> {err}");
            last = err;
        }
    }

    #[test]
    fn finer_groups_reduce_error_on_normal_channels() {
        // This is exactly Atom's group-quantization argument: with a few
        // high-magnitude channels in the row, per-channel scales are set by
        // the outliers and crush the normal values; per-group scales adapt
        // locally. Measure error on the *normal* channels only.
        let mut rng = SeededRng::new(2);
        let mut x = rng.normal_matrix(4, 128, 0.0, 1.0);
        for r in 0..4 {
            for c in 112..128 {
                x[(r, c)] *= 50.0;
            }
        }
        let normal_mse = |d: &Matrix| {
            let mut e = 0.0f64;
            for r in 0..4 {
                for c in 0..112 {
                    e += ((d[(r, c)] - x[(r, c)]) as f64).powi(2);
                }
            }
            e / (4.0 * 112.0)
        };
        let coarse = normal_mse(&fake_quantize(&x, QuantSpec::new(4, usize::MAX)));
        let fine = normal_mse(&fake_quantize(&x, QuantSpec::new(4, 16)));
        assert!(
            fine < coarse / 10.0,
            "group quant should win on normal channels: fine {fine} vs coarse {coarse}"
        );
    }

    #[test]
    fn zero_matrix_roundtrips_exactly() {
        let x = Matrix::zeros(3, 10);
        let q = GroupQuantized::quantize(&x, QuantSpec::new(4, 4));
        assert_eq!(q.dequantize(), x);
    }

    #[test]
    fn scales_are_f16_representable() {
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(4, 32, 0.0, 3.0);
        let q = GroupQuantized::quantize(&x, QuantSpec::new(4, 8));
        for &s in q.scales().as_slice() {
            assert_eq!(s, round_f16(s), "scale {s} not on f16 grid");
        }
    }

    #[test]
    fn quantized_values_in_range() {
        let mut rng = SeededRng::new(4);
        let x = rng.normal_matrix(4, 32, 0.0, 10.0);
        for bits in [3u8, 4, 8] {
            let q = GroupQuantized::quantize(&x, QuantSpec::new(bits, 8));
            let (lo, hi) = (q.values().min_value(), q.values().max_value());
            for v in q.values().unpack() {
                assert!(v >= lo && v <= hi, "bits {bits}: {v}");
            }
        }
    }

    #[test]
    fn clipping_reduces_outlier_dominance() {
        // One huge value per group; clipping trades its accuracy for the
        // rest of the group.
        let mut x = Matrix::full(1, 32, 0.1);
        x[(0, 5)] = 100.0;
        let unclipped = GroupQuantized::quantize(&x, QuantSpec::new(4, 32));
        // The clip must bring the step below ~0.2 so the 0.1 values land on
        // a nonzero level: s_unclipped = 2*100/15 = 13.3, so clip 0.01
        // yields s = 0.133.
        let clipped = GroupQuantized::quantize(&x, QuantSpec::new(4, 32).with_clip(0.01));
        let small_err = |m: &Matrix| {
            let mut e = 0.0f64;
            for c in 0..32 {
                if c != 5 {
                    e += ((m[(0, c)] - 0.1) as f64).powi(2);
                }
            }
            e
        };
        assert!(small_err(&clipped.dequantize()) < small_err(&unclipped.dequantize()));
    }

    #[test]
    fn ragged_final_group() {
        let mut rng = SeededRng::new(5);
        let x = rng.normal_matrix(2, 10, 0.0, 1.0); // 10 cols, group 4 -> 3 groups
        let spec = QuantSpec::new(4, 4);
        assert_eq!(spec.groups_for(10), 3);
        let q = GroupQuantized::quantize(&x, spec);
        assert_eq!(q.scales().cols(), 3);
        assert!(q.dequantize().mse(&x) < 0.05);
    }

    #[test]
    fn effective_bits_matches_paper_formula() {
        // Paper footnote 1: group 128 INT4 with FP16 scales has
        // 4 + 16/128 = 4.125 effective bits (before outliers).
        let x = Matrix::zeros(4, 512);
        let q = GroupQuantized::quantize(&x, QuantSpec::new(4, 128));
        assert!((q.effective_bits() - 4.125).abs() < 1e-9);
    }

    #[test]
    fn per_channel_spec() {
        let mut rng = SeededRng::new(6);
        let x = rng.normal_matrix(3, 20, 0.0, 1.0);
        let q = GroupQuantized::quantize(&x, QuantSpec::new(8, usize::MAX));
        assert_eq!(q.scales().cols(), 1);
        assert!(q.dequantize().mse(&x) < 1e-4);
    }

    #[test]
    fn static_scales_roundtrip_on_calibration_like_data() {
        let mut rng = SeededRng::new(7);
        let sample = rng.normal_matrix(32, 32, 0.0, 1.0);
        let spec = QuantSpec::new(4, 8);
        let shared = GroupQuantized::calibrate_shared_scales(&sample, spec);
        assert_eq!(shared.len(), 4);
        let live = rng.normal_matrix(8, 32, 0.0, 1.0);
        let q_static = GroupQuantized::quantize_with_shared_scales(&live, spec, &shared);
        let q_dynamic = GroupQuantized::quantize(&live, spec);
        let err_static = q_static.dequantize().mse(&live);
        let err_dynamic = q_dynamic.dequantize().mse(&live);
        // Dynamic adapts to the live input and must not lose; static stays
        // usable when the distribution matches calibration.
        assert!(err_dynamic <= err_static * 1.5, "{err_dynamic} vs {err_static}");
        assert!(err_static < 0.1, "static error unusable: {err_static}");
    }

    #[test]
    fn static_scales_fail_on_distribution_shift() {
        // The paper's §4.3 argument: statically calculated parameters miss
        // the live input's local distribution.
        let mut rng = SeededRng::new(8);
        let sample = rng.normal_matrix(32, 16, 0.0, 0.1); // calibrated small
        let spec = QuantSpec::new(4, 8);
        let shared = GroupQuantized::calibrate_shared_scales(&sample, spec);
        let live = rng.normal_matrix(8, 16, 0.0, 5.0); // live is 50x larger
        let err_static = GroupQuantized::quantize_with_shared_scales(&live, spec, &shared)
            .dequantize()
            .mse(&live);
        let err_dynamic = GroupQuantized::quantize(&live, spec).dequantize().mse(&live);
        assert!(
            err_static > err_dynamic * 10.0,
            "static should clip badly: {err_static} vs {err_dynamic}"
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(QuantSpec::new(1, 8).validate().is_err());
        assert!(QuantSpec::new(9, 8).validate().is_err());
        assert!(QuantSpec::new(4, 0).validate().is_err());
        assert!(QuantSpec::new(4, 8).with_clip(0.0).validate().is_err());
        assert!(QuantSpec::new(4, 8).with_clip(1.5).validate().is_err());
    }
}
