//! Integer GEMM kernels with fused group dequantization.
//!
//! [`fused_group_gemm`] is the CPU realization of the paper's Fig. 8
//! pipeline: per K-group, the low-bit integer partial products are computed
//! with i32 accumulation (the tensor-core MMA stand-in, step ①), then
//! dequantized with the activation-group and weight-group scales (step ②)
//! and accumulated in FP32 (step ③) — all inside one loop nest, with no
//! intermediate buffer, exactly like the fused MMA pipeline.
//!
//! [`mixed_gemm`] adds the mixed-precision path of §4.1: after channel
//! reordering, the leading `k - outliers` channels are INT4 and the trailing
//! outlier channels INT8; the two regions multiply separately and their FP32
//! results sum.

use crate::group::{GroupQuantized, MAX_BITS};
use crate::path::KernelPath;
use crate::KernelError;
use atom_parallel::{Pool, KERNEL_ROW_BLOCK};
use atom_telemetry::{names, span, Telemetry};
use atom_tensor::Matrix;

/// Largest reduction length `K` an `i32` accumulator provably survives at
/// the widest quantizer setting. One summand is a product of two values
/// quantized at at most [`MAX_BITS`] bits, so its magnitude is at most
/// `2^(MAX_BITS-1) * 2^(MAX_BITS-1) = 2^14`, and `K` such summands stay
/// below `2^31` exactly when `K <= (2^31 - 1) >> 14 = 131071` — i.e. the
/// W8A8 path is safe for every `K < 2^17`. Narrower widths only widen the
/// margin. The GEMM entry points `debug_assert!` this cap; the
/// `accumulator-width` lint proves the same inequality from the
/// `// bound:` comments at the reduction sites.
pub const MAX_ACC_K: usize = (i32::MAX as usize) >> (2 * (MAX_BITS as usize - 1));

/// Plain integer GEMM with i32 accumulation: `a (m x k) @ b_t (n x k)^T`,
/// returning the raw i32 accumulators. This is the "pure INT4/INT8 GEMM
/// without any quantization operation" baseline of the §5.4.2 ablation.
///
/// # Panics
///
/// Panics if the inner dimensions disagree. Debug builds also panic when
/// `k` exceeds [`MAX_ACC_K`], the largest reduction length the i32
/// accumulator provably survives.
pub fn int_gemm_i32(a: &[i8], b_t: &[i8], m: usize, n: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "a size mismatch");
    assert_eq!(b_t.len(), n * k, "b size mismatch");
    debug_assert!(
        k <= MAX_ACC_K,
        "k = {k} exceeds MAX_ACC_K = {MAX_ACC_K}: i32 accumulation could overflow"
    );
    // `chunks_exact` walks the row-major operands without bounds checks;
    // `k.max(1)` keeps the chunk size legal when k == 0 (both inputs are
    // then empty and the all-zero output is already correct).
    let mut out = vec![0i32; m * n];
    for (ar, out_row) in a.chunks_exact(k.max(1)).zip(out.chunks_mut(n.max(1))) {
        for (br, o) in b_t.chunks_exact(k.max(1)).zip(out_row.iter_mut()) {
            // Each |product| <= 2^(bA-1) * 2^(bW-1) and k <= MAX_ACC_K, so
            // the reduction stays inside i32 at the widest setting:
            // bound: K * 2 ^ (2 * (MAX_BITS - 1)) < 2 ^ 31
            let dot: i32 = ar
                .iter()
                .zip(br)
                .map(|(&x, &w)| i32::from(x) * i32::from(w))
                .sum();
            *o = dot;
        }
    }
    out
}

/// Fused group-dequantization GEMM (paper Fig. 8).
///
/// `a` is a group-quantized activation matrix (`m x k`, quantized per token
/// per group) and `w` a group-quantized weight in `n x k` (transposed)
/// layout. Both must share the same group size; bit widths may differ (e.g.
/// INT4 activations against INT8 outlier weights never happens — regions
/// match — but W4A8-style mixes are legal).
///
/// Runs on the process-wide [`Pool`] (see [`fused_group_gemm_with`] for an
/// explicit pool); output bits are identical for any thread count because
/// each output row is computed independently by exactly the loop nest below.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when inner dimensions or group
/// sizes disagree.
///
/// # Example
///
/// ```
/// use atom_kernels::{fused_group_gemm, GroupQuantized, QuantSpec};
/// use atom_tensor::Matrix;
///
/// let spec = QuantSpec::new(4, 16); // INT4, groups of 16 (paper's W4A4)
/// let a = GroupQuantized::quantize(&Matrix::full(2, 32, 0.5), spec);
/// let w = GroupQuantized::quantize(&Matrix::full(3, 32, 0.25), spec);
/// let out = fused_group_gemm(&a, &w).expect("shapes agree");
/// assert_eq!((out.rows(), out.cols()), (2, 3));
/// // The fused pipeline matches dequantize-then-FP32-GEMM up to summation
/// // order; 32 x (0.5 * 0.25) = 4.0 up to INT4 rounding.
/// let reference = atom_kernels::gemm::reference_gemm(&a, &w);
/// assert!((out.row(0)[0] - reference.row(0)[0]).abs() < 1e-5);
/// assert!((out.row(0)[0] - 4.0).abs() < 1.0);
/// ```
pub fn fused_group_gemm(a: &GroupQuantized, w: &GroupQuantized) -> Result<Matrix, KernelError> {
    fused_group_gemm_with(Pool::global(), a, w)
}

/// [`fused_group_gemm`] on an explicit [`Pool`], parallelized over output
/// rows. Every row is an exclusive output tile written by one chunk, so the
/// result is bit-identical to `Pool::sequential()` for any thread count.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when inner dimensions or group
/// sizes disagree, and [`KernelError::WorkerPanic`] if a parallel worker
/// panicked (the panic is contained, not propagated).
pub fn fused_group_gemm_with(
    pool: &Pool,
    a: &GroupQuantized,
    w: &GroupQuantized,
) -> Result<Matrix, KernelError> {
    fused_group_gemm_with_path(pool, a, w, KernelPath::current())
}

/// [`fused_group_gemm_with`] with an explicit [`KernelPath`].
///
/// `Scalar` runs the reference loop nest: unpack both operands, then one
/// iterator dot per output element with the fused group-dequant epilogue.
/// `Swar` runs the weight-block-outer kernel: weights stay packed until the
/// inner loop, each weight row decodes once per GEMM via the 16-lane SWAR
/// unpack into an L1-resident buffer and is then MAC-ed against every
/// activation row, accumulating into a transposed `n x m` tile (transposed
/// back at the end). Groups are visited in the same ascending order with the
/// same `0.0`-seeded FP32 fold and the same exact i32 group sums, so the two
/// paths return bit-identical matrices — the property suite asserts `==`,
/// not approximate equality.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when inner dimensions or group
/// sizes disagree, and [`KernelError::WorkerPanic`] if a parallel worker
/// panicked (the panic is contained, not propagated).
///
/// # Example
///
/// ```
/// use atom_kernels::{fused_group_gemm_with_path, GroupQuantized, KernelPath, QuantSpec};
/// use atom_parallel::Pool;
/// use atom_tensor::Matrix;
///
/// let spec = QuantSpec::new(4, 16);
/// let a = GroupQuantized::quantize(&Matrix::full(2, 32, 0.5), spec);
/// let w = GroupQuantized::quantize(&Matrix::full(3, 32, 0.25), spec);
/// let pool = Pool::sequential();
/// let scalar = fused_group_gemm_with_path(&pool, &a, &w, KernelPath::Scalar).unwrap();
/// let swar = fused_group_gemm_with_path(&pool, &a, &w, KernelPath::Swar).unwrap();
/// assert_eq!(scalar.as_slice(), swar.as_slice()); // bit-identical, not approximate
/// ```
pub fn fused_group_gemm_with_path(
    pool: &Pool,
    a: &GroupQuantized,
    w: &GroupQuantized,
    path: KernelPath,
) -> Result<Matrix, KernelError> {
    if a.cols() != w.cols() {
        return Err(KernelError::ShapeMismatch(format!(
            "inner dimension: activations k={} vs weights k={}",
            a.cols(),
            w.cols()
        )));
    }
    let group_a = a.spec().group.min(a.cols().max(1));
    let group_w = w.spec().group.min(w.cols().max(1));
    if group_a != group_w {
        return Err(KernelError::ShapeMismatch(format!(
            "group size: activations {group_a} vs weights {group_w}"
        )));
    }
    let (m, _n, _k) = (a.rows(), w.rows(), a.cols());
    let group = group_a.max(1);
    debug_assert!(
        group <= MAX_ACC_K,
        "group {group} exceeds MAX_ACC_K = {MAX_ACC_K}: per-group i32 accumulation \
         could overflow"
    );

    let bytes = (a.packed_bytes() + w.packed_bytes()) as u64;
    let t = Telemetry::global();
    let _timer = t.timer(names::OP_GEMM_WALL_NS);
    let _span = span!(names::SPAN_GEMM_W4A4, bytes = bytes, rows = m);
    t.counter_add(names::OP_GEMM_BYTES, bytes);
    t.counter_add(names::OP_GEMM_ROWS, m as u64);
    t.counter_add(names::OP_GEMM_CALLS, 1);
    match path {
        KernelPath::Scalar => t.counter_add(names::OP_GEMM_SCALAR_CALLS, 1),
        KernelPath::Swar => t.counter_add(names::OP_GEMM_SWAR_CALLS, 1),
    }

    match path {
        KernelPath::Scalar => gemm_scalar(pool, a, w, group),
        KernelPath::Swar => gemm_swar_wblock(pool, a, w, group),
    }
}

/// The scalar reference GEMM: both operands fully unpacked, one iterator
/// dot per output element. This loop nest is the oracle — the SWAR kernel
/// must reproduce its output bit-for-bit.
fn gemm_scalar(
    pool: &Pool,
    a: &GroupQuantized,
    w: &GroupQuantized,
    group: usize,
) -> Result<Matrix, KernelError> {
    let (m, n, k) = (a.rows(), w.rows(), a.cols());
    // Unpack both operands once (the GPU kernel streams packed data through
    // shared memory; on CPU a one-shot unpack plays the same role).
    let av = a.values().unpack_with_path(pool, KernelPath::Scalar);
    let wv = w.values().unpack_with_path(pool, KernelPath::Scalar);
    let a_scales = a.scales();
    let w_scales = w.scales();

    // The loop nest walks both operands as K-sized rows and both scale
    // matrices as group-aligned rows; `chunks`/`zip` make every access
    // bounds-check-free and total (`scales` has one column per K-group, so
    // the group walk is bounded exactly as before). Rows parallelize as
    // one-row chunks: chunk i owns out[i*n .. (i+1)*n] exclusively and is
    // computed by the same sequential code at any pool width.
    let mut out = Matrix::zeros(m, n);
    pool.par_chunks_mut(out.as_mut_slice(), n.max(1), |i, out_row| {
        let Some(ar) = av.get(i * k..(i + 1) * k) else {
            return;
        };
        let sa = a_scales.row(i);
        for ((br, sw_row), o) in wv
            .chunks_exact(k.max(1))
            .zip(w_scales.iter_rows())
            .zip(out_row.iter_mut())
        {
            *o = ar
                .chunks(group)
                .zip(br.chunks(group))
                .zip(sa.iter().zip(sw_row))
                .map(|((ga, gw), (&scale_a, &scale_w))| {
                    // Step 1: low-bit integer MMA with i32 accumulation.
                    // The group length is capped at MAX_ACC_K above, so:
                    // bound: K * 2 ^ (2 * (MAX_BITS - 1)) < 2 ^ 31
                    let iacc: i32 = ga
                        .iter()
                        .zip(gw)
                        .map(|(&x, &w)| i32::from(x) * i32::from(w))
                        .sum();
                    // Steps 2+3: dequantize the group's partial result and
                    // accumulate in FP32, in place.
                    iacc as f32 * scale_a * scale_w
                })
                .sum();
        }
    })?;
    Ok(out)
}

/// The SWAR weight-block-outer GEMM.
///
/// The scalar path streams the fully-unpacked weight matrix (`n*k` bytes)
/// through the cache once per *activation row*; this kernel inverts the
/// loop order so the packed weights (`n*k/2` bytes at INT4) stream exactly
/// once per GEMM. Work parallelizes over blocks of [`KERNEL_ROW_BLOCK`]
/// weight rows: block `b` owns weight rows `b*RB ..` and writes the
/// exclusive span `out_t[b*RB*m ..]` of a transposed `n x m` accumulator,
/// so any thread count produces the same bytes. Per weight row, the row
/// decodes once via the 16-lane SWAR unpack into a `k`-byte L1-resident
/// buffer and is MAC-ed against all `m` activation rows with the fused
/// group-dequant epilogue kept in the same pass.
///
/// Bit-identity with the scalar path holds because (a) each per-group i32
/// sum is exact — no overflow by the [`MAX_ACC_K`] cap — so its value is
/// independent of evaluation order, and (b) the FP32 epilogue folds the
/// per-group terms in the same ascending-group order from the same `0.0`
/// seed for every output element.
fn gemm_swar_wblock(
    pool: &Pool,
    a: &GroupQuantized,
    w: &GroupQuantized,
    group: usize,
) -> Result<Matrix, KernelError> {
    let (m, n, k) = (a.rows(), w.rows(), a.cols());
    // Activations are small (m rows); unpack them once via the SWAR decode.
    let av = a.values().unpack_with_path(pool, KernelPath::Swar);
    let a_scales = a.scales();
    let w_scales = w.scales();
    let wq = w.values();

    // Transposed accumulator: column-major from `out`'s perspective, so a
    // weight-row block is a contiguous exclusive chunk. `n*m` splits into
    // `m`-sized columns, and chunks of `m*RB` always cover whole columns,
    // so `j = block*RB + jj` below never reaches `n`.
    let mut out_t = vec![0f32; n * m];
    pool.par_chunks_mut(&mut out_t, m.max(1) * KERNEL_ROW_BLOCK, |b, chunk| {
        let mut wbuf: Vec<i8> = vec![0i8; k];
        for (jj, col) in chunk.chunks_mut(m.max(1)).enumerate() {
            let j = b * KERNEL_ROW_BLOCK + jj;
            // One SWAR decode of weight row j serves all m activation rows.
            wq.unpack_row_with(j, &mut wbuf, KernelPath::Swar);
            let sw_row = w_scales.row(j);
            for (i, o) in col.iter_mut().enumerate() {
                let Some(ar) = av.get(i * k..(i + 1) * k) else {
                    continue;
                };
                let sa = a_scales.row(i);
                for ((ga, gw), (&scale_a, &scale_w)) in ar
                    .chunks(group)
                    .zip(wbuf.chunks(group))
                    .zip(sa.iter().zip(sw_row))
                {
                    // Same exact group sum as the scalar path; the group
                    // length is capped at MAX_ACC_K by the caller, so:
                    // bound: K * 2 ^ (2 * (MAX_BITS - 1)) < 2 ^ 31
                    let iacc: i32 = ga
                        .iter()
                        .zip(gw)
                        .map(|(&x, &w)| i32::from(x) * i32::from(w))
                        .sum();
                    // Fused dequant epilogue: ascending-group FP32 fold from
                    // the 0.0 the accumulator was initialized with — the
                    // same fold `sum::<f32>()` performs in the scalar path.
                    *o += iacc as f32 * scale_a * scale_w;
                }
            }
        }
    })?;

    // Transpose the n x m accumulator back to m x n on the caller thread.
    let mut out = Matrix::zeros(m, n);
    let flat = out.as_mut_slice();
    for (j, col) in out_t.chunks_exact(m.max(1)).enumerate() {
        for (i, &v) in col.iter().enumerate() {
            if let Some(o) = flat.get_mut(i * n + j) {
                *o = v;
            }
        }
    }
    Ok(out)
}

/// Mixed-precision GEMM (paper §4.1): the reordered operands carry their
/// normal region (low-bit) and outlier region (INT8) separately; partial
/// results sum in FP32.
///
/// Pass `None` for the outlier pair when no outliers are kept.
///
/// # Errors
///
/// Propagates shape mismatches from the underlying fused GEMMs, and rejects
/// row-count mismatches between the regions.
pub fn mixed_gemm(
    a_normal: &GroupQuantized,
    w_normal: &GroupQuantized,
    outliers: Option<(&GroupQuantized, &GroupQuantized)>,
) -> Result<Matrix, KernelError> {
    mixed_gemm_with(Pool::global(), a_normal, w_normal, outliers)
}

/// [`mixed_gemm`] on an explicit [`Pool`]. Both regional GEMMs parallelize
/// over rows; the FP32 region sum stays on the caller thread, so no
/// reduction ever races.
///
/// # Errors
///
/// Propagates shape mismatches from the underlying fused GEMMs, and rejects
/// row-count mismatches between the regions.
pub fn mixed_gemm_with(
    pool: &Pool,
    a_normal: &GroupQuantized,
    w_normal: &GroupQuantized,
    outliers: Option<(&GroupQuantized, &GroupQuantized)>,
) -> Result<Matrix, KernelError> {
    mixed_gemm_with_path(pool, a_normal, w_normal, outliers, KernelPath::current())
}

/// [`mixed_gemm_with`] with an explicit [`KernelPath`]: both the INT4
/// normal-region GEMM and the INT8 outlier-region GEMM run on the selected
/// path, so a pinned benchmark never mixes implementations. The FP32 region
/// sum happens on the caller thread in both cases — path choice changes
/// nothing about the result bytes.
///
/// # Errors
///
/// Propagates shape mismatches from the underlying fused GEMMs, and rejects
/// row-count mismatches between the regions.
///
/// # Example
///
/// ```
/// use atom_kernels::{mixed_gemm_with_path, GroupQuantized, KernelPath, QuantSpec};
/// use atom_parallel::Pool;
/// use atom_tensor::Matrix;
///
/// let a = GroupQuantized::quantize(&Matrix::full(2, 32, 1.0), QuantSpec::new(4, 16));
/// let w = GroupQuantized::quantize(&Matrix::full(3, 32, 1.0), QuantSpec::new(4, 16));
/// let pool = Pool::sequential();
/// let scalar = mixed_gemm_with_path(&pool, &a, &w, None, KernelPath::Scalar).unwrap();
/// let swar = mixed_gemm_with_path(&pool, &a, &w, None, KernelPath::Swar).unwrap();
/// assert_eq!(scalar.as_slice(), swar.as_slice());
/// ```
pub fn mixed_gemm_with_path(
    pool: &Pool,
    a_normal: &GroupQuantized,
    w_normal: &GroupQuantized,
    outliers: Option<(&GroupQuantized, &GroupQuantized)>,
    path: KernelPath,
) -> Result<Matrix, KernelError> {
    let mut out = fused_group_gemm_with_path(pool, a_normal, w_normal, path)?;
    if let Some((a_out, w_out)) = outliers {
        if a_out.rows() != a_normal.rows() || w_out.rows() != w_normal.rows() {
            return Err(KernelError::ShapeMismatch(
                "outlier region row counts disagree with normal region".into(),
            ));
        }
        let o = fused_group_gemm_with_path(pool, a_out, w_out, path)?;
        out.add_scaled_in_place(&o, 1.0);
    }
    Ok(out)
}

/// Reference implementation: dequantize both operands and run the FP32
/// GEMM. The fused kernel must match this bit-for-bit up to FP32 summation
/// order effects; tests verify closeness.
pub fn reference_gemm(a: &GroupQuantized, w: &GroupQuantized) -> Matrix {
    a.dequantize().matmul_nt(&w.dequantize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::QuantSpec;
    use atom_tensor::SeededRng;

    #[test]
    fn int_gemm_known_values() {
        // [1 2; 3 4] @ [5 6; 7 8]^T(stored as rows of B^T) -> with b_t rows = columns of b
        let a: Vec<i8> = vec![1, 2, 3, 4];
        let b_t: Vec<i8> = vec![5, 6, 7, 8]; // b_t row 0 = (5,6), row 1 = (7,8)
        let out = int_gemm_i32(&a, &b_t, 2, 2, 2);
        assert_eq!(out, vec![17, 23, 39, 53]);
    }

    #[test]
    fn int_gemm_survives_largest_admissible_k() {
        // W8A8 worst case: every product is (-128)*(-128) = 2^14, and
        // MAX_ACC_K of them sum to 131071 * 16384 = 2147467264, inside
        // i32::MAX = 2147483647 with exactly 16383 to spare.
        assert_eq!(MAX_ACC_K, 131_071);
        let a = vec![-128i8; MAX_ACC_K];
        let b_t = vec![-128i8; MAX_ACC_K];
        let out = int_gemm_i32(&a, &b_t, 1, 1, MAX_ACC_K);
        assert_eq!(out, vec![2_147_467_264i32]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "MAX_ACC_K")]
    fn int_gemm_rejects_k_beyond_bound() {
        let k = MAX_ACC_K + 1;
        let a = vec![0i8; k];
        let b_t = vec![0i8; k];
        let _ = int_gemm_i32(&a, &b_t, 1, 1, k);
    }

    #[test]
    fn fused_matches_reference() {
        let mut rng = SeededRng::new(1);
        let a = rng.normal_matrix(6, 48, 0.0, 1.0);
        let w = rng.normal_matrix(10, 48, 0.0, 0.5);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(4, 16));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, 16));
        let fused = fused_group_gemm(&qa, &qw).unwrap();
        let reference = reference_gemm(&qa, &qw);
        for (f, r) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((f - r).abs() < 1e-3, "{f} vs {r}");
        }
    }

    #[test]
    fn fused_approximates_fp32_gemm() {
        let mut rng = SeededRng::new(2);
        let a = rng.normal_matrix(4, 64, 0.0, 1.0);
        let w = rng.normal_matrix(8, 64, 0.0, 0.5);
        let exact = a.matmul_nt(&w);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(8, 16));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(8, 16));
        let approx = fused_group_gemm(&qa, &qw).unwrap();
        let rel = approx.sub(&exact).frob_norm() / exact.frob_norm();
        assert!(rel < 0.02, "8-bit GEMM relative error {rel}");
    }

    #[test]
    fn mixed_gemm_handles_outlier_region() {
        let mut rng = SeededRng::new(3);
        // 48 normal channels + 16 outlier channels with 30x magnitude.
        let a_n = rng.normal_matrix(5, 48, 0.0, 1.0);
        let a_o = rng.normal_matrix(5, 16, 0.0, 30.0);
        let w_n = rng.normal_matrix(7, 48, 0.0, 0.5);
        let w_o = rng.normal_matrix(7, 16, 0.0, 0.5);
        let exact = a_n.matmul_nt(&w_n).add(&a_o.matmul_nt(&w_o));

        let qa_n = GroupQuantized::quantize(&a_n, QuantSpec::new(4, 16));
        let qa_o = GroupQuantized::quantize(&a_o, QuantSpec::new(8, 16));
        let qw_n = GroupQuantized::quantize(&w_n, QuantSpec::new(4, 16));
        let qw_o = GroupQuantized::quantize(&w_o, QuantSpec::new(8, 16));
        let mixed = mixed_gemm(&qa_n, &qw_n, Some((&qa_o, &qw_o))).unwrap();
        let rel = mixed.sub(&exact).frob_norm() / exact.frob_norm();
        assert!(rel < 0.05, "mixed GEMM relative error {rel}");

        // All-INT4 on the same data must be much worse: the outlier columns
        // dominate the result and INT4 cannot express them next to the
        // normal ones... (they are separate regions here, so instead check
        // that dropping the outlier region entirely is catastrophic).
        let partial = mixed_gemm(&qa_n, &qw_n, None).unwrap();
        let rel_partial = partial.sub(&exact).frob_norm() / exact.frob_norm();
        assert!(rel_partial > 10.0 * rel);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = GroupQuantized::quantize(&Matrix::zeros(2, 16), QuantSpec::new(4, 8));
        let w_wrong_k = GroupQuantized::quantize(&Matrix::zeros(3, 24), QuantSpec::new(4, 8));
        assert!(matches!(
            fused_group_gemm(&a, &w_wrong_k),
            Err(KernelError::ShapeMismatch(_))
        ));
        let w_wrong_group = GroupQuantized::quantize(&Matrix::zeros(3, 16), QuantSpec::new(4, 4));
        assert!(fused_group_gemm(&a, &w_wrong_group).is_err());
    }

    #[test]
    fn w4a8_mix_is_legal() {
        let mut rng = SeededRng::new(4);
        let a = rng.normal_matrix(3, 32, 0.0, 1.0);
        let w = rng.normal_matrix(5, 32, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(8, 16));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, 16));
        let out = fused_group_gemm(&qa, &qw).unwrap();
        let rel = out.sub(&a.matmul_nt(&w)).frob_norm() / a.matmul_nt(&w).frob_norm();
        assert!(rel < 0.2, "W4A8 error {rel}");
    }

    #[test]
    fn ragged_groups_match_reference() {
        let mut rng = SeededRng::new(5);
        let a = rng.normal_matrix(3, 20, 0.0, 1.0); // group 8 -> groups of 8,8,4
        let w = rng.normal_matrix(4, 20, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(4, 8));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, 8));
        let fused = fused_group_gemm(&qa, &qw).unwrap();
        let reference = reference_gemm(&qa, &qw);
        for (f, r) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((f - r).abs() < 1e-3);
        }
    }
}
