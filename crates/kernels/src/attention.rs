//! Self-attention with dequantize-on-load quantized KV.
//!
//! Mirrors the paper's fused FlashInfer integration (§4.5): keys and values
//! are *stored* in low-bit form; the kernel loads them, dequantizes to
//! floating point, and performs the FP attention arithmetic — so only
//! low-bit bytes cross the (simulated) memory boundary, which is where the
//! self-attention speedup of Fig. 11(b) comes from.

use crate::asym::AsymQuantized;
use crate::path::KernelPath;
use crate::KernelError;
use atom_parallel::Pool;
use atom_telemetry::{names, span, Telemetry};
use atom_tensor::{ops, Matrix};

/// One attention head's quantized KV block.
#[derive(Debug, Clone)]
pub struct QuantizedKvHead {
    /// Quantized keys, one row per cached token.
    pub keys: AsymQuantized,
    /// Quantized values, one row per cached token.
    pub values: AsymQuantized,
}

impl QuantizedKvHead {
    /// Creates an empty head block of width `head_dim`.
    pub fn new(head_dim: usize, bits: u8) -> Self {
        QuantizedKvHead {
            keys: AsymQuantized::empty(head_dim, bits),
            values: AsymQuantized::empty(head_dim, bits),
        }
    }

    /// Appends new tokens' K/V rows, quantizing them per `(token, head)` —
    /// the paper's KV granularity.
    pub fn append(&mut self, k: &Matrix, v: &Matrix) {
        self.keys.append_rows(k);
        self.values.append_rows(v);
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.keys.rows()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory footprint of the block in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.keys.packed_bytes() + self.values.packed_bytes()
    }

    /// Drops cached tokens beyond the first `tokens` (see
    /// [`AsymQuantized::truncate_rows`]); surviving rows are bit-identical.
    pub fn truncate(&mut self, tokens: usize) {
        self.keys.truncate_rows(tokens);
        self.values.truncate_rows(tokens);
    }
}

/// Single-head attention over a quantized KV block with dequantize-on-load.
///
/// `q` is `q_len x head_dim`; queries are the final `q_len` positions of the
/// cached sequence (causal masking applied accordingly).
///
/// # Panics
///
/// Panics if shapes disagree or `q_len` exceeds the cached length.
pub fn attention_quant_kv(q: &Matrix, kv: &QuantizedKvHead, scale: f32) -> Matrix {
    attention_quant_kv_path(q, kv, scale, KernelPath::current())
}

/// [`attention_quant_kv`] with an explicit [`KernelPath`].
///
/// The path selects how each K/V row's codes decode on load: `Scalar` runs
/// the per-element reference decode and allocates a fresh code buffer per
/// row (the original kernel shape, kept as the honest baseline), `Swar`
/// decodes 16 INT4 / 8 INT8 lanes per `u64` word and reuses one scratch
/// buffer across the whole sweep. Decoded rows are bit-identical either
/// way, and the FP attention arithmetic is shared, so the two paths return
/// equal matrices — the property suite asserts `==`.
///
/// # Example
///
/// ```
/// use atom_kernels::{attention_quant_kv_path, KernelPath, QuantizedKvHead};
/// use atom_tensor::Matrix;
///
/// let mut kv = QuantizedKvHead::new(8, 4);
/// kv.append(&Matrix::full(3, 8, 0.5), &Matrix::full(3, 8, 1.5));
/// let q = Matrix::full(2, 8, 1.0);
/// let scalar = attention_quant_kv_path(&q, &kv, 0.35, KernelPath::Scalar);
/// let swar = attention_quant_kv_path(&q, &kv, 0.35, KernelPath::Swar);
/// assert_eq!(scalar.as_slice(), swar.as_slice());
/// ```
///
/// # Panics
///
/// Panics if shapes disagree or `q_len` exceeds the cached length.
pub fn attention_quant_kv_path(
    q: &Matrix,
    kv: &QuantizedKvHead,
    scale: f32,
    path: KernelPath,
) -> Matrix {
    let head_dim = q.cols();
    assert_eq!(kv.keys.cols(), head_dim, "key width mismatch");
    assert_eq!(kv.values.cols(), head_dim, "value width mismatch");
    let kv_len = kv.len();
    assert!(q.rows() <= kv_len, "queries exceed cached tokens");
    let offset = kv_len - q.rows();

    let bytes = kv.packed_bytes() as u64;
    let t = Telemetry::global();
    let _timer = t.timer(names::OP_ATTENTION_WALL_NS);
    let _span = span!(names::SPAN_ATTENTION_QUANT_KV, bytes = bytes, kv_len = kv_len);
    t.counter_add(names::OP_ATTENTION_BYTES, bytes);
    t.counter_add(names::OP_ATTENTION_CALLS, 1);
    match path {
        KernelPath::Scalar => t.counter_add(names::OP_ATTENTION_SCALAR_CALLS, 1),
        KernelPath::Swar => t.counter_add(names::OP_ATTENTION_SWAR_CALLS, 1),
    }

    // SWAR sweeps reuse one code scratch across every row decode; the
    // scalar arm keeps the original allocate-per-row decode.
    let mut scratch = Vec::new();
    let mut decode = |src: &AsymQuantized, r: usize, out: &mut [f32]| match path {
        KernelPath::Scalar => src.dequantize_row_into_with(r, out, KernelPath::Scalar),
        KernelPath::Swar => src.dequantize_row_scratch(r, out, &mut scratch, KernelPath::Swar),
    };

    // Dequantize-on-load: each K/V row is expanded to FP as it streams in.
    let mut scores = Matrix::zeros(q.rows(), kv_len);
    let mut krow = vec![0.0f32; head_dim];
    for t in 0..kv_len {
        decode(&kv.keys, t, &mut krow);
        for i in 0..q.rows() {
            let mut dot = 0.0f32;
            for (a, b) in q.row(i).iter().zip(krow.iter()) {
                dot += a * b;
            }
            // lint: allow(panic-freedom) — i < q.rows() and t < kv_len are exactly the dimensions `scores` was constructed with
            scores[(i, t)] = dot * scale;
        }
    }
    ops::causal_mask_in_place(&mut scores, offset);
    let probs = ops::softmax_rows(&scores);

    let mut out = Matrix::zeros(q.rows(), head_dim);
    let mut vrow = vec![0.0f32; head_dim];
    for t in 0..kv_len {
        decode(&kv.values, t, &mut vrow);
        for i in 0..q.rows() {
            // lint: allow(panic-freedom) — probs is softmax(scores) and shares its constructed dimensions
            let p = probs[(i, t)];
            if p == 0.0 {
                continue;
            }
            let dst = out.row_mut(i);
            for (d, &v) in dst.iter_mut().zip(vrow.iter()) {
                *d += p * v;
            }
        }
    }
    out
}

/// Multi-head attention over quantized KV blocks: head `h` attends
/// `q_heads[h]` against `kv_heads[h]`, in parallel on the process-wide
/// [`Pool`] (see [`attention_quant_kv_heads_with`]). Heads are returned in
/// input order and each head is computed by the single-head kernel
/// unchanged, so outputs are bit-identical for any thread count.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] when the head counts disagree
/// and [`KernelError::WorkerPanic`] when a head's kernel panicked (shape
/// asserts inside [`attention_quant_kv`] surface here instead of
/// aborting).
pub fn attention_quant_kv_heads(
    q_heads: &[Matrix],
    kv_heads: &[QuantizedKvHead],
    scale: f32,
) -> Result<Vec<Matrix>, KernelError> {
    attention_quant_kv_heads_with(Pool::global(), q_heads, kv_heads, scale)
}

/// [`attention_quant_kv_heads`] on an explicit [`Pool`]; one chunk per
/// head, so [`KernelError::WorkerPanic`] reports exactly the failed head
/// indices.
///
/// # Errors
///
/// As [`attention_quant_kv_heads`].
pub fn attention_quant_kv_heads_with(
    pool: &Pool,
    q_heads: &[Matrix],
    kv_heads: &[QuantizedKvHead],
    scale: f32,
) -> Result<Vec<Matrix>, KernelError> {
    attention_quant_kv_heads_with_path(pool, q_heads, kv_heads, scale, KernelPath::current())
}

/// [`attention_quant_kv_heads_with`] with an explicit [`KernelPath`] for
/// every head, so benches can pin scalar-vs-SWAR end to end.
///
/// ```
/// use atom_kernels::attention::QuantizedKvHead;
/// use atom_kernels::{attention_quant_kv_heads_with_path, KernelPath};
/// use atom_parallel::Pool;
/// use atom_tensor::Matrix;
///
/// let mut kv = QuantizedKvHead::new(4, 4);
/// kv.append(&Matrix::full(3, 4, 0.5), &Matrix::full(3, 4, 1.5));
/// let q = vec![Matrix::full(2, 4, 1.0)];
/// let kvs = vec![kv];
/// let pool = Pool::sequential();
/// let scalar =
///     attention_quant_kv_heads_with_path(&pool, &q, &kvs, 0.5, KernelPath::Scalar).unwrap();
/// let swar = attention_quant_kv_heads_with_path(&pool, &q, &kvs, 0.5, KernelPath::Swar).unwrap();
/// assert_eq!(scalar[0].as_slice(), swar[0].as_slice());
/// ```
///
/// # Errors
///
/// As [`attention_quant_kv_heads`].
pub fn attention_quant_kv_heads_with_path(
    pool: &Pool,
    q_heads: &[Matrix],
    kv_heads: &[QuantizedKvHead],
    scale: f32,
    path: KernelPath,
) -> Result<Vec<Matrix>, KernelError> {
    if q_heads.len() != kv_heads.len() {
        return Err(KernelError::ShapeMismatch(format!(
            "head count: {} query heads vs {} kv heads",
            q_heads.len(),
            kv_heads.len()
        )));
    }
    let out = pool.par_map(q_heads, |h, q| {
        kv_heads.get(h).map(|kv| attention_quant_kv_path(q, kv, scale, path))
    })?;
    let heads: Vec<Matrix> = out.into_iter().flatten().collect();
    if heads.len() == q_heads.len() {
        Ok(heads)
    } else {
        // Unreachable: the head-count check above makes every `get` hit.
        Err(KernelError::ShapeMismatch(
            "kv head lookup failed after count check".into(),
        ))
    }
}

/// FP32 reference attention over explicit K/V matrices (`kv_len x
/// head_dim`), used to validate the quantized kernel and as the FP16
/// baseline in benches.
pub fn attention_reference(q: &Matrix, k: &Matrix, v: &Matrix, scale: f32) -> Matrix {
    assert_eq!(k.rows(), v.rows(), "k/v length mismatch");
    assert!(q.rows() <= k.rows(), "queries exceed keys");
    let offset = k.rows() - q.rows();
    let mut scores = q.matmul_nt(k);
    scores.scale_in_place(scale);
    ops::causal_mask_in_place(&mut scores, offset);
    ops::softmax_rows(&scores).matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    #[test]
    fn int8_kv_attention_close_to_reference() {
        let mut rng = SeededRng::new(1);
        let (kv_len, hd) = (24, 16);
        let k = rng.normal_matrix(kv_len, hd, 0.0, 1.0);
        let v = rng.normal_matrix(kv_len, hd, 0.0, 1.0);
        let q = rng.normal_matrix(4, hd, 0.0, 1.0);
        let scale = 1.0 / atom_tensor::cast::usize_to_f32(hd).sqrt();
        let reference = attention_reference(&q, &k, &v, scale);

        let mut kv = QuantizedKvHead::new(hd, 8);
        kv.append(&k, &v);
        let quant = attention_quant_kv(&q, &kv, scale);
        let rel = quant.sub(&reference).frob_norm() / reference.frob_norm();
        assert!(rel < 0.02, "INT8 KV attention error {rel}");
    }

    #[test]
    fn int4_worse_than_int8_but_usable() {
        let mut rng = SeededRng::new(2);
        let (kv_len, hd) = (32, 8);
        let k = rng.normal_matrix(kv_len, hd, 0.0, 1.0);
        let v = rng.normal_matrix(kv_len, hd, 0.0, 1.0);
        let q = rng.normal_matrix(2, hd, 0.0, 1.0);
        let scale = 1.0 / atom_tensor::cast::usize_to_f32(hd).sqrt();
        let reference = attention_reference(&q, &k, &v, scale);
        let rel_of = |bits| {
            let mut kv = QuantizedKvHead::new(hd, bits);
            kv.append(&k, &v);
            let o = attention_quant_kv(&q, &kv, scale);
            (o.sub(&reference).frob_norm() / reference.frob_norm()) as f64
        };
        let r8 = rel_of(8);
        let r4 = rel_of(4);
        assert!(r8 < r4, "INT8 ({r8}) should beat INT4 ({r4})");
        assert!(r4 < 0.25, "INT4 KV attention error too large: {r4}");
    }

    #[test]
    fn causal_masking_respected() {
        // A huge "future" value must not leak into earlier queries.
        let hd = 4;
        let mut k = Matrix::zeros(3, hd);
        let mut v = Matrix::zeros(3, hd);
        for c in 0..hd {
            k[(2, c)] = 5.0;
            v[(2, c)] = 100.0;
        }
        let q = Matrix::full(3, hd, 1.0);
        let mut kv = QuantizedKvHead::new(hd, 8);
        kv.append(&k, &v);
        let out = attention_quant_kv(&q, &kv, 1.0);
        // Query 0 (position 0) sees only token 0 -> output 0.
        assert!(out.row(0).iter().all(|&x| x.abs() < 1e-3));
        // Query 2 (position 2) sees token 2's giant value.
        assert!(out.row(2)[0] > 10.0);
    }

    #[test]
    fn incremental_append_matches_batch() {
        let mut rng = SeededRng::new(3);
        let hd = 8;
        let k = rng.normal_matrix(6, hd, 0.0, 1.0);
        let v = rng.normal_matrix(6, hd, 0.0, 1.0);
        let mut all = QuantizedKvHead::new(hd, 8);
        all.append(&k, &v);
        let mut inc = QuantizedKvHead::new(hd, 8);
        for r in 0..6 {
            inc.append(&k.slice_rows(r, r + 1), &v.slice_rows(r, r + 1));
        }
        assert_eq!(all.len(), inc.len());
        let q = rng.normal_matrix(1, hd, 0.0, 1.0);
        let a = attention_quant_kv(&q, &all, 0.5);
        let b = attention_quant_kv(&q, &inc, 0.5);
        // Per-row quantization is identical either way.
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn memory_footprint_scales_with_bits() {
        let mut rng = SeededRng::new(4);
        let k = rng.normal_matrix(64, 16, 0.0, 1.0);
        let v = rng.normal_matrix(64, 16, 0.0, 1.0);
        let bytes_of = |bits| {
            let mut kv = QuantizedKvHead::new(16, bits);
            kv.append(&k, &v);
            kv.packed_bytes()
        };
        let b8 = bytes_of(8);
        let b4 = bytes_of(4);
        let b2 = bytes_of(2);
        assert!(b4 < b8 && b2 < b4);
        // Codes shrink exactly 2x; scales/zeros stay constant.
        assert_eq!(b8 - b4, 64 * 16 * 2 / 2);
    }
}
