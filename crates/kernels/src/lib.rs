//! Bit-exact packed low-bit CPU kernels for the Atom reproduction.
//!
//! The paper's CUDA kernels cannot run here, but their *numerics* can: this
//! crate implements the same data layouts and arithmetic pipelines on the
//! CPU, bit-for-bit —
//!
//! - [`packed`] — dense bit-packed integer matrices (2–8 bits per element,
//!   INT4 packs two values per byte exactly like the GPU layout).
//! - [`group`] — symmetric per-group quantized tensors with f16 scales: the
//!   operand format of Atom's fused GEMM (paper §4.2).
//! - [`gemm`] — integer GEMM with i32 accumulation, the fused
//!   group-dequantization GEMM of Fig. 8, and the mixed-precision GEMM that
//!   multiplies the INT4 normal region and the INT8 outlier region
//!   separately and sums in FP32.
//! - [`asym`] — asymmetric per-row quantized containers used by the
//!   KV-cache (paper §4.4).
//! - [`attention`] — self-attention with dequantize-on-load quantized KV,
//!   mirroring the fused FlashInfer kernel.
//! - [`swar`] — `u64` SWAR primitives that decode 16 INT4 (or 8 INT8) lanes
//!   per word; the hot GEMM/attention inner loops are built on these.
//! - [`path`] — [`KernelPath`] selection between the SWAR fast path and the
//!   scalar reference (`ATOM_KERNEL_PATH`, default `swar`); the two are
//!   proven bit-identical by the property suite.
//!
//! Every kernel has a reference implementation and is tested against it;
//! the quantization *algorithms* (outlier selection, reordering, GPTQ,
//! clipping search) live in the `atom` crate and produce these containers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod asym;
pub mod attention;
pub mod gemm;
pub mod group;
pub mod packed;
pub mod path;
pub mod swar;

pub use asym::AsymQuantized;
pub use attention::{
    attention_quant_kv, attention_quant_kv_heads, attention_quant_kv_heads_with,
    attention_quant_kv_heads_with_path, attention_quant_kv_path, QuantizedKvHead,
};
pub use gemm::{
    fused_group_gemm, fused_group_gemm_with, fused_group_gemm_with_path, mixed_gemm,
    mixed_gemm_with, mixed_gemm_with_path,
};
pub use group::{GroupQuantized, QuantSpec, MAX_BITS, MIN_BITS};
pub use packed::PackedMatrix;
pub use path::KernelPath;

/// Error type for kernel-level shape and parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Operand shapes are incompatible.
    ShapeMismatch(String),
    /// A quantization parameter is out of range.
    InvalidParameter(String),
    /// A parallel worker panicked; the panic was contained by the pool and
    /// surfaced as this error instead of aborting the process.
    WorkerPanic(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            KernelError::InvalidParameter(s) => write!(f, "invalid parameter: {s}"),
            KernelError::WorkerPanic(s) => write!(f, "parallel worker panic: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<atom_parallel::PoolError> for KernelError {
    fn from(e: atom_parallel::PoolError) -> Self {
        KernelError::WorkerPanic(e.to_string())
    }
}
