//! Bit-packed signed-integer matrices.
//!
//! [`PackedMatrix`] stores an `rows x cols` matrix of `bits`-wide signed
//! integers with values biased to unsigned at rest, rows padded to byte
//! boundaries — the same layout low-bit GPU kernels use (INT4 packs two
//! values per byte). It is the storage substrate for both the symmetric
//! group-quantized GEMM operands and the asymmetric KV-cache.

use crate::path::KernelPath;
use crate::swar;
use atom_parallel::Pool;
use serde::{Deserialize, Serialize};

/// A dense matrix of `bits`-wide signed integers (2 ≤ bits ≤ 8).
///
/// Element `v` is stored as the unsigned value `v + 2^(bits-1)`; the signed
/// range is `[-2^(bits-1), 2^(bits-1) - 1]` (e.g. `[-8, 7]` for INT4).
///
/// # Example
///
/// ```
/// use atom_kernels::PackedMatrix;
///
/// let mut m = PackedMatrix::zeros(2, 3, 4);
/// m.set(1, 2, -8);
/// m.set(0, 0, 7);
/// assert_eq!(m.get(1, 2), -8);
/// assert_eq!(m.get(0, 0), 7);
/// assert_eq!(m.packed_bytes(), 4); // 2 rows x ceil(3*4/8) = 2 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMatrix {
    rows: usize,
    cols: usize,
    bits: u8,
    row_stride: usize,
    data: Vec<u8>,
}

impl PackedMatrix {
    /// Creates a matrix of zeros (the signed value `0`).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8`.
    pub fn zeros(rows: usize, cols: usize, bits: u8) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
        let row_stride = (cols * bits as usize).div_ceil(8);
        let mut m = PackedMatrix {
            rows,
            cols,
            bits,
            row_stride,
            data: vec![0u8; rows * row_stride],
        };
        // Biased representation of signed 0 is 2^(bits-1), not raw 0.
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, 0);
            }
        }
        m
    }

    /// Builds a packed matrix from signed values in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or any value is out of the
    /// signed range of `bits`.
    pub fn from_values(rows: usize, cols: usize, bits: u8, values: &[i8]) -> Self {
        assert_eq!(values.len(), rows * cols, "value count mismatch");
        let mut m = Self::zeros(rows, cols, bits);
        for (r, row) in values.chunks(cols.max(1)).enumerate().take(rows) {
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bit width per element.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Smallest representable signed value.
    pub fn min_value(&self) -> i8 {
        -(1i16 << (self.bits - 1)) as i8
    }

    /// Largest representable signed value.
    pub fn max_value(&self) -> i8 {
        ((1i16 << (self.bits - 1)) - 1) as i8
    }

    /// Bytes of packed storage (the real memory footprint).
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Reads one element.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let bits = self.bits as usize;
        let bit_off = c * bits;
        let byte = r * self.row_stride + bit_off / 8;
        let shift = bit_off % 8;
        // Read up to 16 bits covering the window. The asserted index bounds
        // plus the row-stride allocation keep the window inside `data`.
        let lo = self.data[byte] as u16; // lint: allow(panic-freedom) — byte = r*stride + c*bits/8 < data.len() by the asserted bounds
        let hi = if shift + bits > 8 {
            self.data[byte + 1] as u16 // lint: allow(panic-freedom) — a straddling window implies the stride has a following byte
        } else {
            0
        };
        let window = lo | (hi << 8);
        let mask = (1u16 << bits) - 1;
        let raw = ((window >> shift) & mask) as i16;
        (raw - (1i16 << (bits - 1))) as i8
    }

    /// Writes one element.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices or out-of-range values.
    pub fn set(&mut self, r: usize, c: usize, v: i8) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        assert!(
            v >= self.min_value() && v <= self.max_value(),
            "value {v} out of range for {} bits",
            self.bits
        );
        let bits = self.bits as usize;
        let raw = (v as i16 + (1i16 << (bits - 1))) as u16;
        let bit_off = c * bits;
        let byte = r * self.row_stride + bit_off / 8;
        let shift = bit_off % 8;
        let mask = ((1u16 << bits) - 1) << shift;
        let mut window = self.data[byte] as u16; // lint: allow(panic-freedom) — byte = r*stride + c*bits/8 < data.len() by the asserted bounds
        if shift + bits > 8 {
            window |= (self.data[byte + 1] as u16) << 8; // lint: allow(panic-freedom) — a straddling window implies the stride has a following byte
        }
        window = (window & !mask) | (raw << shift);
        self.data[byte] = (window & 0xFF) as u8; // lint: allow(panic-freedom) — same window as the read above
        if shift + bits > 8 {
            self.data[byte + 1] = (window >> 8) as u8; // lint: allow(panic-freedom) — same window as the read above
        }
    }

    /// Unpacks row `r` into `out` as signed i8 values.
    ///
    /// This is the hot path of every GEMM kernel: operand rows are unpacked
    /// once into registers/cache-resident buffers before the integer MMA.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.cols()`. A row index out of range is a
    /// caller bug: it trips a debug assertion under test and writes zeros in
    /// release builds.
    pub fn unpack_row(&self, r: usize, out: &mut [i8]) {
        self.unpack_row_with(r, out, KernelPath::current());
    }

    /// [`unpack_row`](Self::unpack_row) with an explicit [`KernelPath`]:
    /// `Swar` decodes INT4/INT8 rows 16/8 lanes per `u64` word via
    /// [`crate::swar`], every other width (and `Scalar`) runs the portable
    /// per-element loop. Both paths produce byte-identical buffers — the
    /// round-trip below packs values, unpacks through each path, and
    /// compares exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use atom_kernels::{KernelPath, PackedMatrix};
    ///
    /// let vals: Vec<i8> = (0..37).map(|c| (c % 16) - 8).collect();
    /// let m = PackedMatrix::from_values(1, vals.len(), 4, &vals);
    /// let mut scalar = vec![0i8; vals.len()];
    /// let mut swar = vec![0i8; vals.len()];
    /// m.unpack_row_with(0, &mut scalar, KernelPath::Scalar);
    /// m.unpack_row_with(0, &mut swar, KernelPath::Swar);
    /// assert_eq!(scalar, vals);
    /// assert_eq!(swar, vals);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.cols()`. A row index out of range is a
    /// caller bug: it trips a debug assertion under test and writes zeros in
    /// release builds.
    pub fn unpack_row_with(&self, r: usize, out: &mut [i8], path: KernelPath) {
        assert_eq!(out.len(), self.cols, "unpack buffer size mismatch");
        let Some(row) = self
            .data
            .get(r * self.row_stride..(r + 1) * self.row_stride)
        else {
            debug_assert!(false, "row {r} out of range");
            out.fill(0);
            return;
        };
        match (path, self.bits) {
            (KernelPath::Swar, 4) => swar::unpack_row_i4(row, out),
            (KernelPath::Swar, 8) => swar::unpack_row_i8(row, out),
            _ => self.unpack_row_scalar(row, out),
        }
    }

    /// The scalar reference decode: one shift/mask/debias chain per element
    /// (with byte-level fast paths for the 8- and 4-bit layouts). This is
    /// the oracle the SWAR path is proven bit-identical to.
    fn unpack_row_scalar(&self, row: &[u8], out: &mut [i8]) {
        let bits = self.bits as usize;
        let bias = 1i16 << (bits - 1);
        let mask = (1u16 << bits) - 1;
        match bits {
            8 => {
                // One byte per value; a straight zip compiles to a
                // bounds-check-free sweep.
                for (o, &b) in out.iter_mut().zip(row) {
                    *o = (i16::from(b) - bias) as i8;
                }
            }
            4 => {
                // Two values per byte: the canonical INT4 nibble layout.
                // Each output pair draws from one row byte (the final chunk
                // is a single element when `cols` is odd).
                for (pair, &b) in out.chunks_mut(2).zip(row) {
                    for (k, o) in pair.iter_mut().enumerate() {
                        let raw = if k == 0 { b & 0x0F } else { b >> 4 };
                        *o = (i16::from(raw) - bias) as i8;
                    }
                }
            }
            _ => {
                for (c, o) in out.iter_mut().enumerate() {
                    let bit_off = c * bits;
                    let byte = bit_off / 8;
                    let shift = bit_off % 8;
                    let lo = u16::from(row[byte]); // lint: allow(panic-freedom) — byte = c*bits/8 < row_stride because c < cols
                    let hi = if shift + bits > 8 {
                        u16::from(row[byte + 1]) // lint: allow(panic-freedom) — a straddling window implies the stride has a following byte
                    } else {
                        0
                    };
                    let raw = ((lo | (hi << 8)) >> shift) & mask;
                    *o = (raw as i16 - bias) as i8;
                }
            }
        }
    }

    /// Unpacks the whole matrix into a row-major i8 buffer.
    pub fn unpack(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.rows * self.cols];
        for (r, chunk) in out
            .chunks_mut(self.cols.max(1))
            .enumerate()
            .take(self.rows)
        {
            self.unpack_row(r, chunk);
        }
        out
    }

    /// [`unpack`](Self::unpack) parallelized over rows on `pool`. Each row
    /// decodes into its own disjoint `cols`-wide output span by the same
    /// [`unpack_row`](Self::unpack_row) code, so the buffer is byte-identical
    /// to the sequential unpack for any thread count.
    pub fn unpack_with(&self, pool: &Pool) -> Vec<i8> {
        self.unpack_with_path(pool, KernelPath::current())
    }

    /// [`unpack_with`](Self::unpack_with) with an explicit [`KernelPath`],
    /// so a benchmark or test pinned to the scalar reference never decodes
    /// through the SWAR primitives behind its back. Identical bytes either
    /// way, for any thread count.
    ///
    /// # Example
    ///
    /// ```
    /// use atom_kernels::{KernelPath, PackedMatrix};
    /// use atom_parallel::Pool;
    ///
    /// let vals: Vec<i8> = (0..96).map(|c| (c % 16) - 8).collect();
    /// let m = PackedMatrix::from_values(4, 24, 4, &vals);
    /// let pool = Pool::sequential();
    /// let scalar = m.unpack_with_path(&pool, KernelPath::Scalar);
    /// let swar = m.unpack_with_path(&pool, KernelPath::Swar);
    /// assert_eq!(scalar, swar);
    /// assert_eq!(scalar, vals);
    /// ```
    pub fn unpack_with_path(&self, pool: &Pool, path: KernelPath) -> Vec<i8> {
        let mut out = vec![0i8; self.rows * self.cols];
        // `rows * cols` divides evenly into `cols`-element chunks, so every
        // chunk is a full row and `unpack_row`'s length assert always holds;
        // the error arm is an unreachable backstop, served sequentially.
        let ok = pool
            .par_chunks_mut(&mut out, self.cols.max(1), |r, chunk| {
                self.unpack_row_with(r, chunk, path);
            })
            .is_ok();
        if ok {
            out
        } else {
            self.unpack()
        }
    }

    /// Stacks row-blocks vertically. Rows are byte-aligned (`row_stride`),
    /// so stacking is exact payload concatenation — the parallel row-block
    /// quantizer relies on this to reassemble per-block results into the
    /// same bytes the sequential quantizer writes.
    ///
    /// Returns `None` when `blocks` is empty or the blocks disagree on
    /// column count or bit width.
    pub fn vstack(blocks: &[PackedMatrix]) -> Option<PackedMatrix> {
        let first = blocks.first()?;
        let (cols, bits, row_stride) = (first.cols, first.bits, first.row_stride);
        if blocks.iter().any(|b| b.cols != cols || b.bits != bits) {
            return None;
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * row_stride);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Some(PackedMatrix {
            rows,
            cols,
            bits,
            row_stride,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::cast::{i32_to_i8_saturating, usize_to_i32_saturating};

    #[test]
    fn roundtrip_all_bit_widths() {
        for bits in 2..=8u8 {
            let cols = 13; // odd to exercise byte-boundary crossings
            let mut m = PackedMatrix::zeros(3, cols, bits);
            let (lo, hi) = (m.min_value(), m.max_value());
            let span = i32::from(hi) - i32::from(lo) + 1;
            let mut expected = Vec::new();
            for r in 0..3 {
                for c in 0..cols {
                    let code = usize_to_i32_saturating(r * cols + c) % span;
                    let v = i32_to_i8_saturating(i32::from(lo) + code);
                    m.set(r, c, v);
                    expected.push(v);
                }
            }
            for r in 0..3 {
                for c in 0..cols {
                    assert_eq!(m.get(r, c), expected[r * cols + c], "bits={bits} r={r} c={c}");
                }
            }
            assert_eq!(m.unpack(), expected, "bits={bits}");
        }
    }

    #[test]
    fn int4_packs_two_per_byte() {
        let m = PackedMatrix::zeros(1, 128, 4);
        assert_eq!(m.packed_bytes(), 64);
        let m8 = PackedMatrix::zeros(1, 128, 8);
        assert_eq!(m8.packed_bytes(), 128);
        let m3 = PackedMatrix::zeros(1, 128, 3);
        assert_eq!(m3.packed_bytes(), 48);
    }

    #[test]
    fn zeros_decode_to_zero() {
        for bits in 2..=8u8 {
            let m = PackedMatrix::zeros(2, 5, bits);
            assert!(m.unpack().iter().all(|&v| v == 0), "bits={bits}");
        }
    }

    #[test]
    fn extremes_roundtrip() {
        let mut m = PackedMatrix::zeros(1, 2, 4);
        m.set(0, 0, -8);
        m.set(0, 1, 7);
        assert_eq!(m.get(0, 0), -8);
        assert_eq!(m.get(0, 1), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overflow_value_panics() {
        let mut m = PackedMatrix::zeros(1, 1, 4);
        m.set(0, 0, 8);
    }

    #[test]
    fn from_values_matches_sets() {
        let vals: Vec<i8> = vec![-2, -1, 0, 1, -2, 1];
        let m = PackedMatrix::from_values(2, 3, 2, &vals);
        assert_eq!(m.unpack(), vals);
    }

    #[test]
    fn neighbors_do_not_clobber() {
        let mut m = PackedMatrix::zeros(1, 8, 3);
        for (c, v) in (-4i8..4).enumerate() {
            m.set(0, c, v);
        }
        m.set(0, 3, 3); // rewrite middle element
        let expect: Vec<i8> = vec![-4, -3, -2, 3, 0, 1, 2, 3];
        assert_eq!(m.unpack(), expect);
    }
}
