//! Engine telemetry: the TTFT/TPOT histograms and terminal counters the
//! engine records must agree exactly with the per-request `RequestStats`
//! it hands back in `Outcome`s.

use atom_nn::kv::Fp32KvCache;
use atom_nn::{LlamaModel, ModelConfig};
use atom_serve::engine::CpuEngine;
use atom_serve::{SubmitOptions, Terminal};
use atom_telemetry::{names, Telemetry};
use std::sync::Arc;

fn tiny_config() -> ModelConfig {
    ModelConfig {
        dim: 16,
        layers: 1,
        heads: 2,
        kv_heads: 2,
        ffn_dim: 24,
        ..ModelConfig::default()
    }
}

/// An engine with its own enabled telemetry instance, isolated from the
/// process-global one other tests may touch.
fn instrumented_engine(pool_tokens: usize) -> (CpuEngine<atom_nn::DenseLinear>, Arc<Telemetry>) {
    let config = tiny_config();
    let model = LlamaModel::random_init(config, 11);
    let telemetry = Arc::new(Telemetry::enabled());
    let engine = CpuEngine::new(
        model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        4,
        pool_tokens,
    )
    .expect("valid config")
    .with_telemetry(Arc::clone(&telemetry));
    (engine, telemetry)
}

#[test]
fn ttft_and_tpot_histograms_match_request_stats() {
    let (mut engine, telemetry) = instrumented_engine(1024);
    for i in 0..8 {
        let prompt: Vec<u16> = (0..4 + i * 3).map(|t| (t % 96) as u16).collect();
        engine
            .submit_with(prompt, SubmitOptions::new(3 + i % 5))
            .expect("roomy pool admits everything");
    }
    engine.run_to_completion();

    let mut ttfts = Vec::new();
    let mut tpots = Vec::new();
    let mut completed = 0u64;
    for o in engine.outcomes() {
        assert!(matches!(o.terminal, Terminal::Completed), "no faults configured");
        completed += 1;
        ttfts.push(o.stats.ttft_steps().expect("completed ⇒ first token") as u64);
        if let Some(t) = o.stats.tpot_millisteps(o.tokens.len()) {
            tpots.push(t);
        }
    }

    let snap = telemetry.metrics().snapshot();
    let ttft_h = &snap.histograms[names::ENGINE_TTFT_STEPS];
    assert_eq!(ttft_h.count, ttfts.len() as u64);
    assert_eq!(ttft_h.sum, ttfts.iter().sum::<u64>());
    assert_eq!(ttft_h.min, *ttfts.iter().min().expect("requests completed"));
    assert_eq!(ttft_h.max, *ttfts.iter().max().expect("requests completed"));

    let tpot_h = &snap.histograms[names::ENGINE_TPOT_MILLISTEPS];
    assert_eq!(tpot_h.count, tpots.len() as u64);
    assert_eq!(tpot_h.sum, tpots.iter().sum::<u64>());
    assert_eq!(tpot_h.min, *tpots.iter().min().expect("multi-token requests"));
    assert_eq!(tpot_h.max, *tpots.iter().max().expect("multi-token requests"));

    assert_eq!(snap.counter(names::ENGINE_TERMINAL_COMPLETED), completed);
    assert_eq!(
        snap.histograms[names::ENGINE_STEP_WALL_NS].count,
        engine.steps() as u64,
        "one step timer sample per engine step"
    );
    assert_eq!(
        snap.histograms[names::ENGINE_QUEUE_DEPTH].count,
        engine.steps() as u64,
        "queue depth sampled once per step"
    );
}

#[test]
fn default_engine_uses_disabled_global_and_records_nothing_new() {
    // The engine without `with_telemetry` records into the (disabled)
    // global instance: finished requests must not create TTFT samples.
    let config = tiny_config();
    let model = LlamaModel::random_init(config, 7);
    let before = Telemetry::global()
        .metrics()
        .snapshot()
        .histograms
        .get(names::ENGINE_TTFT_STEPS)
        .map_or(0, |h| h.count);
    let mut engine = CpuEngine::new(
        model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        2,
        512,
    )
    .expect("valid config");
    engine.submit((0..6).collect(), 4).expect("admitted");
    engine.run_to_completion();
    assert!(matches!(engine.outcomes()[0].terminal, Terminal::Completed));
    let after = Telemetry::global()
        .metrics()
        .snapshot()
        .histograms
        .get(names::ENGINE_TTFT_STEPS)
        .map_or(0, |h| h.count);
    assert_eq!(before, after, "disabled global telemetry must stay silent");
}
