//! Chaos tests: the serving stack under randomized workloads and seeded,
//! deterministic fault schedules.
//!
//! Invariants asserted under every schedule:
//!
//! - **liveness** — the stack always drains (no deadlock, no livelock);
//! - **conservation** — no KV blocks leak: `used_blocks == 0` at idle and
//!   `used + free == total` at every step;
//! - **exactly-once terminals** — every submission ends in precisely one
//!   `Terminal` state, including rejected, cancelled, expired, and
//!   fault-killed requests.

use atom::QuantizedKvCache;
use atom_data::Request;
use atom_nn::kv::Fp32KvCache;
use atom_nn::{DenseLinear, LlamaModel, ModelConfig};
use atom_serve::engine::CpuEngine;
use atom_serve::{
    ContinuousBatcher, FaultPlan, PagedAllocator, PressurePolicy, SubmitOptions, Terminal,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Drives a bare batcher to idle under a fault plan, asserting block
/// conservation every step. Returns the number of steps taken.
fn drain_batcher_under_faults(
    batcher: &mut ContinuousBatcher,
    plan: &FaultPlan,
    max_steps: usize,
) -> usize {
    let mut step = 0usize;
    while !batcher.is_idle() && step < max_steps {
        step += 1;
        if plan.alloc_fault(step) {
            batcher.arm_alloc_fault();
        }
        batcher.admit();
        batcher.complete_prefill();
        batcher.step_decode();
        batcher.disarm_alloc_fault();
        let a = batcher.allocator();
        assert_eq!(a.used_blocks() + a.free_blocks(), a.total_blocks());
    }
    step
}

fn tiny_config() -> ModelConfig {
    ModelConfig {
        dim: 16,
        layers: 1,
        heads: 2,
        kv_heads: 2,
        ffn_dim: 24,
        ..ModelConfig::default()
    }
}

fn tiny_engine(max_batch: usize, pool_tokens: usize) -> CpuEngine<DenseLinear> {
    let config = tiny_config();
    let model = LlamaModel::random_init(config, 11);
    CpuEngine::new(
        model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        max_batch,
        pool_tokens,
    )
    .expect("valid config")
}

/// 160 seeded fault schedules against a bare batcher on a tight pool:
/// always drains, never leaks a block (the ≥100-schedule acceptance gate).
#[test]
fn batcher_survives_160_seeded_fault_schedules() {
    for seed in 0..160u64 {
        let plan = FaultPlan::seeded(seed, 400, 0.25, 0.0);
        let mut b = ContinuousBatcher::new(3, PagedAllocator::new(8, 16)).expect("config");
        // 128-slot pool; footprints capped at 1 + 3*30 + 20 = 111 slots.
        let mut submitted = 0usize;
        for i in 0..6usize {
            let prefill = 1 + (seed as usize + i * 37) % 91;
            let decode = 1 + (i * 13 + seed as usize / 3) % 20;
            if b.submit(Request {
                id: i,
                arrival_s: 0.0,
                prefill_tokens: prefill,
                decode_tokens: decode,
            })
            .is_ok()
            {
                submitted += 1;
            }
        }
        let steps = drain_batcher_under_faults(&mut b, &plan, 5_000);
        assert!(b.is_idle(), "seed {seed}: not drained after {steps} steps");
        assert_eq!(b.finished(), submitted, "seed {seed}");
        assert_eq!(b.allocator().used_blocks(), 0, "seed {seed}");
    }
}

/// 120 seeded fault schedules through the *real engine* (model forward,
/// real KV caches): every submission reaches exactly one terminal state.
#[test]
fn engine_survives_120_seeded_fault_schedules() {
    for seed in 0..120u64 {
        let plan = FaultPlan::seeded(seed, 80, 0.2, 0.05);
        let mut e = tiny_engine(2, 160).with_fault_plan(plan);
        let mut accepted = Vec::new();
        let mut rejected = 0usize;
        for i in 0..5usize {
            let len = 1 + (seed as usize + i * 7) % 6;
            let max_new = 1 + (i + seed as usize) % 5;
            let deadline = if i % 2 == 0 { None } else { Some(40 + i) };
            let opts = SubmitOptions {
                max_new,
                deadline_steps: deadline,
            };
            match e.submit_with(vec![(i as u16 + 1) % 96; len], opts) {
                Ok(id) => accepted.push(id),
                Err(_) => rejected += 1,
            }
        }
        // Cancel one mid-flight request on odd seeds.
        if seed % 2 == 1 {
            e.step();
            if let Some(&victim) = accepted.first() {
                let _ = e.cancel(victim);
            }
        }
        e.run_to_completion();
        assert_eq!(
            e.outcomes().len(),
            accepted.len() + rejected,
            "seed {seed}: one terminal per submission"
        );
        let mut per_id: HashMap<usize, usize> = HashMap::new();
        for o in e.outcomes() {
            *per_id.entry(o.id).or_default() += 1;
        }
        assert!(
            per_id.values().all(|&n| n == 1),
            "seed {seed}: duplicated terminal state: {per_id:?}"
        );
        assert_eq!(
            e.batcher().allocator().used_blocks(),
            0,
            "seed {seed}: leaked KV blocks"
        );
        assert!(e.batcher().is_idle(), "seed {seed}");
    }
}

/// KV-pressure degradation: with a tight pool and a backed-up queue, the
/// engine admits new requests into the Atom-quantized INT4 KV cache, and
/// every request still reaches a terminal state.
#[test]
fn kv_pressure_degrades_admissions_to_quantized_cache() {
    let config = tiny_config();
    let model = LlamaModel::random_init(config, 11);
    let mut e = CpuEngine::new(
        model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        4,
        128, // 8 blocks: three 40-token requests cannot coexist
    )
    .expect("valid config")
    .with_degraded_cache(Box::new(move || {
        Box::new(QuantizedKvCache::new(
            config.layers,
            config.kv_dim(),
            config.head_dim(),
            4,
        ))
    }))
    .with_policy(PressurePolicy {
        degrade_kv_at: 0.75,
        degrade_queue_depth: Some(2),
        shed_queue_depth: Some(8),
    });

    // First wave: two requests admitted into an empty pool (4 of 8 blocks,
    // no queue) — below both watermarks, so they stay full precision.
    let mut ids: Vec<usize> = (0..2)
        .map(|i| e.submit(vec![(10 + i) as u16; 30], 8).unwrap())
        .collect();
    e.step();
    // Second wave: four more stack the queue past the depth-2 watermark, so
    // the next admissions land in the quantized cache.
    ids.extend((2..6).map(|i| e.submit(vec![(10 + i) as u16; 30], 8).unwrap()));
    e.run_to_completion();

    assert!(
        e.degraded_admissions() > 0,
        "pressure never degraded an admission"
    );
    assert_eq!(e.outcomes().len(), ids.len());
    for id in &ids {
        let o = e.outcome_of(*id).expect("terminal state");
        assert_eq!(o.terminal, Terminal::Completed, "request {id}");
        assert_eq!(o.tokens.len(), 8);
        assert!(o.tokens.iter().all(|&t| (t as usize) < config.vocab));
    }
    assert!(
        e.outcomes().iter().any(|o| o.stats.degraded_kv),
        "no outcome records a degraded admission"
    );
    assert!(
        e.outcomes().iter().any(|o| !o.stats.degraded_kv),
        "early low-pressure admissions should stay full precision"
    );
    assert_eq!(e.batcher().allocator().used_blocks(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random workloads × random fault plans on the bare batcher: always
    /// terminate, conserve blocks, finish every accepted request.
    #[test]
    fn random_workloads_with_random_faults_drain(
        lens in proptest::collection::vec((1usize..100, 1usize..40), 1..16),
        seed in 0u64..10_000,
        alloc_rate in 0.0f64..0.6,
        max_batch in 1usize..5,
    ) {
        let plan = FaultPlan::seeded(seed, 600, alloc_rate, 0.0);
        let mut b = ContinuousBatcher::new(max_batch, PagedAllocator::new(10, 16))
            .expect("config");
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for (i, &(prefill, decode)) in lens.iter().enumerate() {
            // Deliberately unvalidated lengths: some requests exceed the
            // 160-slot pool and must be rejected, not deadlock the batch.
            let r = Request { id: i, arrival_s: 0.0, prefill_tokens: prefill, decode_tokens: decode };
            if b.submit(r).is_ok() { accepted += 1; } else { rejected += 1; }
        }
        prop_assert_eq!(accepted + rejected, lens.len());
        let steps = drain_batcher_under_faults(&mut b, &plan, 30_000);
        prop_assert!(b.is_idle(), "not drained after {} steps", steps);
        prop_assert_eq!(b.finished(), accepted);
        prop_assert_eq!(b.allocator().used_blocks(), 0);
    }

    /// Random workloads × random fault plans through the real engine:
    /// exactly one terminal event per submission, no leaked blocks.
    #[test]
    fn engine_chaos_exactly_once_terminals(
        reqs in proptest::collection::vec((1usize..6, 1usize..6), 1..6),
        seed in 0u64..10_000,
        alloc_rate in 0.0f64..0.4,
        forward_rate in 0.0f64..0.15,
    ) {
        let plan = FaultPlan::seeded(seed, 60, alloc_rate, forward_rate);
        let mut e = tiny_engine(2, 256).with_fault_plan(plan);
        let mut submissions = 0usize;
        for (i, &(len, max_new)) in reqs.iter().enumerate() {
            let _ = e.submit(vec![(i as u16) % 96 + 1; len], max_new);
            submissions += 1;
        }
        e.run_to_completion();
        prop_assert_eq!(e.outcomes().len(), submissions);
        let mut seen = std::collections::HashSet::new();
        for o in e.outcomes() {
            prop_assert!(seen.insert(o.id), "duplicate terminal for {}", o.id);
            if o.terminal == Terminal::Completed {
                prop_assert_eq!(o.tokens.len(), reqs[o.id].1);
            }
        }
        prop_assert_eq!(e.batcher().allocator().used_blocks(), 0);
        prop_assert!(e.batcher().is_idle());
    }
}
