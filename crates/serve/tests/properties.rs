//! Property-based tests of the serving substrate: allocator conservation
//! invariants and scheduler liveness under randomized workloads.

use atom_data::Request;
use atom_serve::{ContinuousBatcher, PagedAllocator};
use proptest::prelude::*;

proptest! {
    #[test]
    fn allocator_conserves_blocks(
        ops in proptest::collection::vec((0usize..8, 1usize..40), 1..60),
        total in 4usize..32,
    ) {
        let mut a = PagedAllocator::new(total, 8);
        let mut registered = std::collections::HashSet::new();
        for (seq, tokens) in ops {
            if registered.contains(&seq) {
                // Randomly grow or release.
                if tokens % 3 == 0 {
                    a.release(seq);
                    registered.remove(&seq);
                } else {
                    let _ = a.grow(seq, tokens);
                }
            } else {
                a.register(seq);
                registered.insert(seq);
                let _ = a.grow(seq, tokens);
            }
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), a.total_blocks());
            prop_assert!(a.utilization() <= 1.0 + 1e-9);
            prop_assert!(a.peak_used() <= a.total_blocks());
        }
        // Releasing everything returns the pool to pristine state.
        for seq in registered {
            a.release(seq);
        }
        prop_assert_eq!(a.free_blocks(), a.total_blocks());
    }

    #[test]
    fn allocated_blocks_are_disjoint(
        grows in proptest::collection::vec(1usize..30, 1..8),
    ) {
        let mut a = PagedAllocator::new(64, 4);
        for (seq, &tokens) in grows.iter().enumerate() {
            a.register(seq);
            let _ = a.grow(seq, tokens);
        }
        let mut seen = std::collections::HashSet::new();
        for seq in 0..grows.len() {
            if let Some(t) = a.table(seq) {
                for &b in t.blocks() {
                    prop_assert!(seen.insert(b), "block {b} double-allocated");
                }
            }
        }
    }

    #[test]
    fn scheduler_always_drains(
        lens in proptest::collection::vec((1usize..60, 1usize..30), 1..20),
        max_batch in 1usize..6,
    ) {
        // Any workload whose largest request fits the pool must drain.
        let pool_blocks = 16usize; // 256 slots
        let block = 16usize;
        let mut b = ContinuousBatcher::new(max_batch, PagedAllocator::new(pool_blocks, block))
            .expect("positive max_batch");
        let mut total = 0usize;
        for (i, &(prefill, decode)) in lens.iter().enumerate() {
            // Cap each request under the pool size.
            let prefill = prefill.min(120);
            let decode = decode.min(100);
            b.submit(Request {
                id: i,
                arrival_s: 0.0,
                prefill_tokens: prefill,
                decode_tokens: decode,
            })
            .expect("capped under the pool size");
            total += 1;
        }
        let mut steps = 0usize;
        while !b.is_idle() && steps < 20_000 {
            b.admit();
            b.complete_prefill();
            b.step_decode();
            steps += 1;
        }
        prop_assert!(b.is_idle(), "scheduler failed to drain after {steps} steps");
        prop_assert_eq!(b.finished(), total);
        prop_assert_eq!(b.allocator().used_blocks(), 0);
    }

    #[test]
    fn workload_generation_invariants(
        rate in 0.5f64..100.0,
        cont in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let spec = atom_data::WorkloadSpec {
            arrival_rate: rate,
            continuation_prob: cont,
            ..atom_data::WorkloadSpec::default()
        };
        let trace = spec.generate(50, seed);
        prop_assert_eq!(trace.len(), 50);
        for w in trace.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for r in &trace {
            prop_assert!(r.prefill_tokens >= 4);
            prop_assert!(r.decode_tokens >= 1);
            prop_assert!(r.prefill_tokens <= spec.max_context);
        }
    }
}
