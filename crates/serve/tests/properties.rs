//! Property-based tests of the serving substrate: allocator conservation
//! invariants, scheduler liveness, and prefix-cache/copy-on-write block
//! sharing under randomized workloads.

use atom_data::Request;
use atom_nn::kv::Fp32KvCache;
use atom_prefix::{RadixIndex, Snapshot, FLAVOR_NORMAL};
use atom_serve::{ContinuousBatcher, PagedAllocator, SharedPrefix};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn allocator_conserves_blocks(
        ops in proptest::collection::vec((0usize..8, 1usize..40), 1..60),
        total in 4usize..32,
    ) {
        let mut a = PagedAllocator::new(total, 8);
        let mut registered = std::collections::HashSet::new();
        for (seq, tokens) in ops {
            if registered.contains(&seq) {
                // Randomly grow or release.
                if tokens % 3 == 0 {
                    a.release(seq);
                    registered.remove(&seq);
                } else {
                    let _ = a.grow(seq, tokens);
                }
            } else {
                a.register(seq);
                registered.insert(seq);
                let _ = a.grow(seq, tokens);
            }
            prop_assert_eq!(a.used_blocks() + a.free_blocks(), a.total_blocks());
            prop_assert!(a.utilization() <= 1.0 + 1e-9);
            prop_assert!(a.peak_used() <= a.total_blocks());
        }
        // Releasing everything returns the pool to pristine state.
        for seq in registered {
            a.release(seq);
        }
        prop_assert_eq!(a.free_blocks(), a.total_blocks());
    }

    #[test]
    fn allocated_blocks_are_disjoint(
        grows in proptest::collection::vec(1usize..30, 1..8),
    ) {
        let mut a = PagedAllocator::new(64, 4);
        for (seq, &tokens) in grows.iter().enumerate() {
            a.register(seq);
            let _ = a.grow(seq, tokens);
        }
        let mut seen = std::collections::HashSet::new();
        for seq in 0..grows.len() {
            if let Some(t) = a.table(seq) {
                for &b in t.blocks() {
                    prop_assert!(seen.insert(b), "block {b} double-allocated");
                }
            }
        }
    }

    #[test]
    fn scheduler_always_drains(
        lens in proptest::collection::vec((1usize..60, 1usize..30), 1..20),
        max_batch in 1usize..6,
    ) {
        // Any workload whose largest request fits the pool must drain.
        let pool_blocks = 16usize; // 256 slots
        let block = 16usize;
        let mut b = ContinuousBatcher::new(max_batch, PagedAllocator::new(pool_blocks, block))
            .expect("positive max_batch");
        let mut total = 0usize;
        for (i, &(prefill, decode)) in lens.iter().enumerate() {
            // Cap each request under the pool size.
            let prefill = prefill.min(120);
            let decode = decode.min(100);
            b.submit(Request {
                id: i,
                arrival_s: 0.0,
                prefill_tokens: prefill,
                decode_tokens: decode,
            })
            .expect("capped under the pool size");
            total += 1;
        }
        let mut steps = 0usize;
        while !b.is_idle() && steps < 20_000 {
            b.admit();
            b.complete_prefill();
            b.step_decode();
            steps += 1;
        }
        prop_assert!(b.is_idle(), "scheduler failed to drain after {steps} steps");
        prop_assert_eq!(b.finished(), total);
        prop_assert_eq!(b.allocator().used_blocks(), 0);
    }

    #[test]
    fn prefix_sharing_conserves_every_refcount(
        ops in proptest::collection::vec((0usize..5, 0usize..3, 9usize..33), 1..60),
    ) {
        // The engine's whole prefix-cache life cycle against the real
        // allocator and index: admit-with-match (pin, attach, grow,
        // unpin), complete-and-donate, cancel, evict, and bare lookups in
        // random orders. After every op the pool must balance exactly:
        // each block's refcount equals its table mappings plus the
        // index's own hold, so no interleaving can leak or double-free.
        const BS: usize = 8;
        const POOL: usize = 32;
        let family_prompt =
            |f: usize, len: usize| -> Vec<u16> { (0..len).map(|t| ((f * 17 + t * 3) % 96) as u16).collect() };
        let snap = |tokens: usize| Arc::new(Snapshot::new(Box::new(Fp32KvCache::new(1, 2)), tokens));

        let mut alloc = PagedAllocator::new(POOL, BS);
        let mut index = RadixIndex::new(BS);
        let mut donors: Vec<(usize, Vec<u16>)> = Vec::new();
        let mut next_seq = 0usize;
        for (tick, (op, family, len)) in ops.into_iter().enumerate() {
            let tick = tick as u64;
            match op {
                0 | 1 => {
                    // Admission: match, pin, attach, grow to full length
                    // plus one decode slot, unpin — the engine's
                    // admit_with_cache flow.
                    let p = family_prompt(family, len);
                    let m = index.match_prefix(&p, FLAVOR_NORMAL, len - 1, tick);
                    for &b in &m.blocks {
                        prop_assert!(alloc.retain_block(b), "pinned a dead block");
                    }
                    let seq = next_seq;
                    next_seq += 1;
                    alloc.register(seq);
                    if m.tokens > 0 {
                        prop_assert!(alloc.attach_shared(seq, &SharedPrefix {
                            blocks: m.blocks.clone(),
                            tokens: m.tokens,
                        }));
                    }
                    let grown = alloc.grow(seq, len + 1 - m.tokens);
                    for &b in &m.blocks {
                        alloc.release_block(b);
                    }
                    if grown.is_ok() {
                        donors.push((seq, p));
                    } else {
                        alloc.release(seq); // admission failed: roll back
                    }
                }
                2 => {
                    // Completed prefill donates its prompt blocks to the
                    // cache, then the sequence finishes.
                    if let Some((seq, p)) = donors.pop() {
                        let covering = alloc.blocks_for(p.len());
                        let blocks: Vec<usize> = alloc
                            .table(seq)
                            .map(|t| t.blocks()[..covering].to_vec())
                            .unwrap_or_default();
                        let (a, ix) = (&mut alloc, &mut index);
                        let report = ix.insert(&p, &blocks, FLAVOR_NORMAL, snap(p.len()), tick,
                            &mut |src, fill| a.fork_copy(src, fill).ok());
                        for &b in &report.newly_shared {
                            prop_assert!(alloc.retain_block(b));
                        }
                        alloc.release(seq);
                    }
                }
                3 => {
                    // Cancel: the sequence dies without donating.
                    if let Some((seq, _)) = donors.pop() {
                        alloc.release(seq);
                    }
                }
                _ => {
                    if let Some(b) = index.evict_lru(&|b| alloc.refcount(b) == 1) {
                        prop_assert_eq!(alloc.refcount(b), 1, "evicted a shared block");
                        alloc.release_block(b);
                    }
                }
            }

            // Exact balance: refcount(b) == table mappings of b + index
            // hold of b, for every block; implies refcounts never go
            // negative and no refcount-1 block sits in two owned tables.
            prop_assert!(alloc.leak_check().is_ok());
            let mut expected = vec![0u64; POOL];
            for (seq, _) in &donors {
                if let Some(t) = alloc.table(*seq) {
                    for &b in t.blocks() {
                        expected[b] += 1;
                    }
                }
            }
            for b in index.blocks() {
                expected[b] += 1;
            }
            for (b, &want) in expected.iter().enumerate() {
                prop_assert_eq!(
                    alloc.refcount(b) as u64, want,
                    "block {} refcount out of balance", b
                );
            }
        }

        // Drain: finish every sequence, then evict the cache dry — the
        // pool must return to pristine.
        for (seq, _) in donors.drain(..) {
            alloc.release(seq);
        }
        while let Some(b) = index.evict_lru(&|b| alloc.refcount(b) == 1) {
            alloc.release_block(b);
        }
        prop_assert!(index.is_empty());
        prop_assert_eq!(alloc.used_blocks(), 0);
        prop_assert_eq!(alloc.total_refs(), 0);
        prop_assert_eq!(alloc.free_blocks(), POOL);
    }

    #[test]
    fn workload_generation_invariants(
        rate in 0.5f64..100.0,
        cont in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let spec = atom_data::WorkloadSpec {
            arrival_rate: rate,
            continuation_prob: cont,
            ..atom_data::WorkloadSpec::default()
        };
        let trace = spec.generate(50, seed);
        prop_assert_eq!(trace.len(), 50);
        for w in trace.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for r in &trace {
            prop_assert!(r.prefill_tokens >= 4);
            prop_assert!(r.decode_tokens >= 1);
            prop_assert!(r.prefill_tokens <= spec.max_context);
        }
    }
}
