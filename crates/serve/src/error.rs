//! Typed error and terminal-state model for the serving stack.
//!
//! A production serving system never panics on traffic: bad input, memory
//! pressure, and faults are runtime *states*, not bugs. Every request
//! submitted to the stack reaches exactly one [`Terminal`] state, and every
//! fallible operation surfaces a [`ServeError`] instead of asserting.

use serde::{Deserialize, Serialize};

/// Why a request was refused admission to the serving queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The prompt contained no tokens.
    EmptyPrompt,
    /// Nothing to generate (`max_new == 0`).
    ZeroDecodeTokens,
    /// The request's maximum KV footprint exceeds the entire block pool:
    /// it could never finish even running alone, so it is rejected up
    /// front instead of stalling the scheduler later.
    ExceedsKvPool {
        /// Blocks the request would need at its final context length.
        needed_blocks: usize,
        /// Blocks in the whole pool.
        total_blocks: usize,
    },
    /// Load shedding: the queue was at its depth watermark, so the newest
    /// submission is dropped to protect tail latency of admitted work.
    QueueFull {
        /// Queue depth observed at submission.
        depth: usize,
        /// Configured shed watermark.
        limit: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::EmptyPrompt => write!(f, "empty prompt"),
            RejectReason::ZeroDecodeTokens => write!(f, "zero decode tokens requested"),
            RejectReason::ExceedsKvPool {
                needed_blocks,
                total_blocks,
            } => write!(
                f,
                "request needs {needed_blocks} KV blocks but the pool holds {total_blocks}"
            ),
            RejectReason::QueueFull { depth, limit } => {
                write!(f, "queue full (depth {depth} >= shed limit {limit})")
            }
        }
    }
}

/// Errors surfaced by the serving stack instead of panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeError {
    /// A constructor was handed an unusable configuration.
    InvalidConfig(&'static str),
    /// A submission was refused (see [`RejectReason`]).
    Rejected(RejectReason),
    /// The request id is unknown or already terminal.
    UnknownRequest(usize),
    /// The simulator was handed an empty trace.
    EmptyTrace,
    /// The scheduler stopped making progress — an internal invariant
    /// breach (should be unreachable once admission validates footprints).
    Stalled {
        /// Iteration at which progress stopped.
        step: usize,
    },
    /// A thread-pool worker panicked while running batched model forwards;
    /// the panic was contained by the pool and converted into this typed
    /// error (affected requests terminalize `Failed`, the process lives).
    WorkerPanic(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            ServeError::UnknownRequest(id) => {
                write!(f, "unknown or already-terminal request {id}")
            }
            ServeError::EmptyTrace => write!(f, "empty trace"),
            ServeError::Stalled { step } => {
                write!(f, "scheduler stopped making progress at step {step}")
            }
            ServeError::WorkerPanic(msg) => write!(f, "parallel worker panic: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<atom_parallel::PoolError> for ServeError {
    fn from(e: atom_parallel::PoolError) -> Self {
        ServeError::WorkerPanic(e.to_string())
    }
}

impl From<RejectReason> for ServeError {
    fn from(reason: RejectReason) -> Self {
        ServeError::Rejected(reason)
    }
}

/// The exactly-once terminal state of a request.
///
/// Every submission accepted by the engine ends in precisely one of these
/// states; the chaos tests assert the exactly-once property under
/// randomized fault schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminal {
    /// All requested tokens were generated.
    Completed,
    /// Refused at submission (never queued).
    Rejected(RejectReason),
    /// Cancelled by the client via `cancel(id)`.
    Cancelled,
    /// The per-request step budget elapsed before completion.
    DeadlineExceeded,
    /// An injected or runtime fault killed the request.
    Failed {
        /// Human-readable failure cause.
        reason: String,
    },
}

impl Terminal {
    /// Whether the request finished with its full generation.
    pub fn is_completed(&self) -> bool {
        matches!(self, Terminal::Completed)
    }
}

impl std::fmt::Display for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Terminal::Completed => write!(f, "completed"),
            Terminal::Rejected(reason) => write!(f, "rejected: {reason}"),
            Terminal::Cancelled => write!(f, "cancelled"),
            Terminal::DeadlineExceeded => write!(f, "deadline exceeded"),
            Terminal::Failed { reason } => write!(f, "failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = RejectReason::ExceedsKvPool {
            needed_blocks: 9,
            total_blocks: 4,
        };
        assert!(r.to_string().contains("9 KV blocks"));
        assert!(ServeError::from(r).to_string().contains("rejected"));
        assert!(Terminal::Rejected(r).to_string().contains("rejected"));
        assert!(!Terminal::Rejected(r).is_completed());
        assert!(Terminal::Completed.is_completed());
    }
}
