//! Continuous batching scheduler (Orca-style iteration-level scheduling).
//!
//! Requests are admitted First-Come-First-Served up to a batch cap and the
//! KV block pool's capacity; whenever a request finishes decoding, the
//! on-the-fly batch is refilled from the queue at the *next iteration*
//! boundary — the continuous batching of §5.3.2.

use crate::error::{RejectReason, ServeError};
use crate::paged::{PagedAllocator, SharedPrefix};
use atom_data::Request;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Outcome of a single head-of-queue admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitOutcome {
    /// The head request was admitted (its prefill is now pending).
    Admitted(Request),
    /// The head request would fit the batch but the pool is short of
    /// blocks; freeing `short_by` blocks (e.g. by evicting cached prefix
    /// runs) and retrying may succeed this same step.
    NeedBlocks {
        /// Additional free blocks required, watermark included.
        short_by: usize,
    },
    /// Nothing can be admitted right now: the queue is empty, the batch is
    /// at its cap, or an injected allocation fault is armed.
    Blocked,
}

/// Lifecycle state of a request inside the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestState {
    /// Waiting in the FCFS queue.
    Queued,
    /// Admitted; prompt not yet processed.
    Prefill,
    /// Generating tokens.
    Decoding,
    /// All tokens generated; slot released.
    Finished,
}

/// What happened to a request during one scheduler step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatchEvent {
    /// Request was admitted and needs its prompt prefilled.
    Admitted(Request),
    /// Request finished and its memory was released.
    Finished(Request),
    /// Request was preempted under memory pressure (vLLM-style recompute
    /// preemption): its KV blocks were released and it re-entered the head
    /// of the queue; its prompt must be prefilled again and generation
    /// restarts.
    Preempted(Request),
}

/// One active sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveSeq {
    /// The underlying request.
    pub request: Request,
    /// Tokens decoded so far.
    pub decoded: usize,
    /// Whether the prompt has been prefilled.
    pub prefilled: bool,
}

impl ActiveSeq {
    /// Current context length (prompt + decoded tokens).
    pub fn context(&self) -> usize {
        self.request.prefill_tokens + self.decoded
    }

    /// Whether generation is complete.
    pub fn done(&self) -> bool {
        self.decoded >= self.request.decode_tokens
    }
}

/// Iteration-level FCFS continuous batcher with paged-KV admission control.
#[derive(Debug)]
pub struct ContinuousBatcher {
    queue: VecDeque<Request>,
    active: Vec<ActiveSeq>,
    max_batch: usize,
    allocator: PagedAllocator,
    finished: usize,
    advanced_ids: Vec<usize>,
    preemptions: usize,
    queue_limit: Option<usize>,
    shed: usize,
}

impl ContinuousBatcher {
    /// Creates a batcher with a batch-size cap and a KV block pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `max_batch == 0`.
    pub fn new(max_batch: usize, allocator: PagedAllocator) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be positive"));
        }
        Ok(ContinuousBatcher {
            queue: VecDeque::new(),
            active: Vec::new(),
            max_batch,
            allocator,
            finished: 0,
            advanced_ids: Vec::new(),
            preemptions: 0,
            queue_limit: None,
            shed: 0,
        })
    }

    /// Caps the waiting queue: submissions past `limit` are shed with
    /// [`RejectReason::QueueFull`]. `None` disables shedding.
    pub fn set_queue_limit(&mut self, limit: Option<usize>) {
        self.queue_limit = limit;
    }

    /// Enqueues a request (FCFS order) after validating that it can be
    /// served at all.
    ///
    /// # Errors
    ///
    /// - [`RejectReason::EmptyPrompt`] / [`RejectReason::ZeroDecodeTokens`]
    ///   for degenerate requests;
    /// - [`RejectReason::ExceedsKvPool`] if the request's final context
    ///   would not fit the pool even running alone — admitting it would
    ///   eventually stall the scheduler forever, so it is refused here;
    /// - [`RejectReason::QueueFull`] when the shed watermark is reached.
    pub fn submit(&mut self, request: Request) -> Result<(), RejectReason> {
        if request.prefill_tokens == 0 {
            return Err(RejectReason::EmptyPrompt);
        }
        if request.decode_tokens == 0 {
            return Err(RejectReason::ZeroDecodeTokens);
        }
        let needed = self.allocator.blocks_for(request.total_context());
        if needed > self.allocator.total_blocks() {
            return Err(RejectReason::ExceedsKvPool {
                needed_blocks: needed,
                total_blocks: self.allocator.total_blocks(),
            });
        }
        if let Some(limit) = self.queue_limit {
            if self.queue.len() >= limit {
                self.shed += 1;
                return Err(RejectReason::QueueFull {
                    depth: self.queue.len(),
                    limit,
                });
            }
        }
        self.queue.push_back(request);
        Ok(())
    }

    /// Removes a request wherever it lives (queue or active batch),
    /// releasing any KV blocks it holds. Returns `false` if the id is
    /// unknown (already finished, never submitted, or previously removed).
    pub fn cancel(&mut self, id: usize) -> bool {
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
            self.allocator.release(id);
            return true;
        }
        if let Some(pos) = self.active.iter().position(|s| s.request.id == id) {
            self.active.remove(pos);
            self.allocator.release(id);
            return true;
        }
        false
    }

    /// Requests shed at submission by the queue limit.
    pub fn shed(&self) -> usize {
        self.shed
    }

    /// Arms the allocator's injected-fault fuse for the coming step.
    pub fn arm_alloc_fault(&mut self) {
        self.allocator.arm_fault();
    }

    /// Clears the allocator's injected-fault fuse.
    pub fn disarm_alloc_fault(&mut self) {
        self.allocator.disarm_fault();
    }

    /// Number of queued (not yet admitted) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The active batch.
    pub fn active(&self) -> &[ActiveSeq] {
        &self.active
    }

    /// Total finished requests.
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// Whether all submitted work is complete.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// The KV allocator (for memory introspection).
    pub fn allocator(&self) -> &PagedAllocator {
        &self.allocator
    }

    /// Mutable access to the KV allocator, for prefix-cache maintenance
    /// (retaining/releasing cached blocks and copy-on-write tail forks).
    /// Engine-internal use: external callers observe via
    /// [`Self::allocator`].
    pub fn allocator_mut(&mut self) -> &mut PagedAllocator {
        &mut self.allocator
    }

    /// The request at the head of the FCFS queue (the only admission
    /// candidate), if any.
    pub fn queue_head(&self) -> Option<&Request> {
        self.queue.front()
    }

    /// Admits queued requests while the batch cap and block pool allow,
    /// strictly in FCFS order (head-of-line blocking is intentional — it is
    /// what the paper's serving setup does).
    ///
    /// Admission keeps a small block *watermark* free when other sequences
    /// are running (vLLM's policy): without it, a freshly preempted request
    /// would immediately re-admit into the very blocks its eviction freed
    /// and the batch would thrash forever.
    pub fn admit(&mut self) -> Vec<BatchEvent> {
        let mut events = Vec::new();
        let no_prefix = SharedPrefix::default();
        while let AdmitOutcome::Admitted(request) = self.try_admit_head(&no_prefix) {
            events.push(BatchEvent::Admitted(request));
        }
        events
    }

    /// Attempts to admit exactly the head-of-queue request, optionally
    /// seeding it with a prefix-cache block run (`shared`; pass an empty
    /// plan for a plain admission — [`Self::admit`] is exactly that in a
    /// loop).
    ///
    /// On [`AdmitOutcome::NeedBlocks`] nothing was mutated; the caller may
    /// free blocks (evict cached runs) and retry within the same step. The
    /// caller guarantees `shared.tokens < head.prefill_tokens` and that the
    /// shared blocks are pinned (refcount ≥ 1) for the duration of the
    /// call.
    pub fn try_admit_head(&mut self, shared: &SharedPrefix) -> AdmitOutcome {
        if self.active.len() >= self.max_batch || self.allocator.fault_armed() {
            return AdmitOutcome::Blocked;
        }
        let Some(front) = self.queue.front() else {
            return AdmitOutcome::Blocked;
        };
        // Admission reserves the prompt plus one decode block so a newly
        // admitted request can always make progress.
        let reserve = front.prefill_tokens + 1;
        let id = front.id;
        debug_assert!(
            shared.is_empty() || shared.tokens < front.prefill_tokens,
            "shared prefix must leave at least one prompt token to prefill"
        );
        let needed = self.allocator.fresh_blocks_for(reserve, shared);
        let watermark = if self.active.is_empty() {
            0 // a lone request may take the whole pool
        } else {
            (self.allocator.total_blocks() / 100).max(1)
        };
        if self.allocator.free_blocks() < needed + watermark {
            return AdmitOutcome::NeedBlocks {
                short_by: needed + watermark - self.allocator.free_blocks(),
            };
        }
        if !self.allocator.contains(id) {
            self.allocator.register(id);
        }
        let attached = if shared.is_empty() {
            0
        } else if self.allocator.attach_shared(id, shared) {
            shared.tokens
        } else {
            0 // inconsistent plan (caller bug): fall back to a full prefill
        };
        if self.allocator.grow(id, reserve - attached).is_err() {
            // Unreachable given the headroom check; stay safe and leave the
            // request queued (any attached blocks are released with the
            // table so nothing leaks).
            self.allocator.release(id);
            return AdmitOutcome::Blocked;
        }
        let Some(request) = self.queue.pop_front() else {
            return AdmitOutcome::Blocked; // unreachable: `front()` was Some above
        };
        self.active.push(ActiveSeq {
            request,
            decoded: 0,
            prefilled: false,
        });
        AdmitOutcome::Admitted(request)
    }

    /// Marks the pending prefills as done (called after the engine runs the
    /// prefill phase) and returns the sequences that were prefilled.
    pub fn complete_prefill(&mut self) -> Vec<Request> {
        let mut done = Vec::new();
        for seq in &mut self.active {
            if !seq.prefilled {
                seq.prefilled = true;
                done.push(seq.request);
            }
        }
        done
    }

    /// Advances every decoding sequence by one token, retiring finished
    /// requests and releasing their KV blocks. Returns finish (and
    /// possibly preemption) events.
    ///
    /// Sequences that cannot obtain a block for their next token stall for
    /// this iteration. If *nothing* advanced and at least one sequence
    /// stalled, the youngest stalled sequence is preempted (its blocks are
    /// released and it re-enters the head of the queue for recompute), so
    /// the batch can never deadlock on memory — the same policy vLLM uses.
    ///
    /// Preemption is skipped while an injected allocation fault is armed
    /// (the stall is transient and eviction would only burn recompute) and
    /// when the stalled sequence is alone with an empty queue — a state
    /// [`Self::submit`]'s footprint validation makes unreachable, since a
    /// lone admitted request always fits the pool.
    pub fn step_decode(&mut self) -> Vec<BatchEvent> {
        let mut events = Vec::new();
        let mut kept = Vec::with_capacity(self.active.len());
        let mut stalled_ids = Vec::new();
        self.advanced_ids.clear();
        for mut seq in std::mem::take(&mut self.active) {
            if !seq.prefilled {
                kept.push(seq);
                continue;
            }
            // The admission reserve covers the first decode token; later
            // tokens grow the table one at a time.
            if seq.decoded > 0
                && self.allocator.grow(seq.request.id, 1).is_err() {
                    stalled_ids.push(seq.request.id);
                    kept.push(seq); // stalled: no block available
                    continue;
                }
            seq.decoded += 1;
            self.advanced_ids.push(seq.request.id);
            if seq.done() {
                self.allocator.release(seq.request.id);
                self.finished += 1;
                events.push(BatchEvent::Finished(seq.request));
            } else {
                kept.push(seq);
            }
        }
        self.active = kept;
        if self.advanced_ids.is_empty() && !stalled_ids.is_empty() && !self.allocator.fault_armed() {
            // Evicting only helps if someone else can use the freed blocks.
            if self.active.len() > 1 || !self.queue.is_empty() {
                // Preempt the youngest stalled sequence. Every stalled id
                // came from `self.active` this step, so the lookup is total;
                // a miss would be an invariant breach we absorb by skipping
                // the preemption rather than killing the batch.
                let victim_pos = stalled_ids
                    .last()
                    .and_then(|id| self.active.iter().rposition(|s| s.request.id == *id));
                if let Some(pos) = victim_pos {
                    let victim = self.active.remove(pos);
                    self.allocator.release(victim.request.id);
                    self.queue.push_front(victim.request);
                    self.preemptions += 1;
                    events.push(BatchEvent::Preempted(victim.request));
                } else {
                    debug_assert!(false, "stalled id not found in the active set");
                }
            } else {
                // A lone stalled sequence with an empty queue would mean a
                // request larger than the pool slipped past submission
                // validation.
                debug_assert!(
                    false,
                    "request {:?} stalled alone with an empty queue",
                    stalled_ids.first()
                );
            }
        }
        events
    }

    /// How many sequences produced a token in the last [`Self::step_decode`].
    pub fn last_advanced(&self) -> usize {
        self.advanced_ids.len()
    }

    /// The sequences that actually grew by one token in the last
    /// [`Self::step_decode`], in batch order. A sequence can advance even if
    /// the pool looked full beforehand (another sequence finishing earlier
    /// in the same step frees its blocks), so compute that mirrors the
    /// scheduler must consume this list rather than predict it.
    pub fn last_advanced_ids(&self) -> &[usize] {
        &self.advanced_ids
    }

    /// Total recompute preemptions so far.
    pub fn preemptions(&self) -> usize {
        self.preemptions
    }

    /// Whether sequence `id` will be able to take its next decode step
    /// right now (used by engines that must mirror scheduler progress).
    pub fn can_advance(&self, id: usize) -> bool {
        match self.active.iter().find(|s| s.request.id == id) {
            Some(seq) => seq.prefilled && (seq.decoded == 0 || self.allocator.can_grow(id, 1)),
            None => false,
        }
    }

    /// Number of active sequences currently decoding (prefilled).
    pub fn decoding(&self) -> usize {
        self.active.iter().filter(|s| s.prefilled).count()
    }

    /// Mean context length over active sequences (0 when empty).
    pub fn mean_context(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.active.iter().map(|s| s.context() as f64).sum::<f64>() / self.active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, prefill: usize, decode: usize) -> Request {
        Request {
            id,
            arrival_s: 0.0,
            prefill_tokens: prefill,
            decode_tokens: decode,
        }
    }

    fn batcher(max_batch: usize, blocks: usize) -> ContinuousBatcher {
        ContinuousBatcher::new(max_batch, PagedAllocator::new(blocks, 16)).expect("valid config")
    }

    #[test]
    fn zero_max_batch_is_invalid_config() {
        let err = ContinuousBatcher::new(0, PagedAllocator::new(4, 16)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn degenerate_requests_rejected_at_submit() {
        let mut b = batcher(2, 4);
        assert_eq!(b.submit(req(0, 0, 4)), Err(RejectReason::EmptyPrompt));
        assert_eq!(b.submit(req(1, 4, 0)), Err(RejectReason::ZeroDecodeTokens));
        // 4 blocks of 16 = 64 slots; 60 + 10 = 70 tokens can never fit.
        assert_eq!(
            b.submit(req(2, 60, 10)),
            Err(RejectReason::ExceedsKvPool {
                needed_blocks: 5,
                total_blocks: 4
            })
        );
        assert!(b.is_idle(), "rejected requests never enter the queue");
    }

    #[test]
    fn queue_limit_sheds_newest() {
        let mut b = batcher(1, 100);
        b.set_queue_limit(Some(2));
        b.submit(req(0, 8, 1)).unwrap();
        b.submit(req(1, 8, 1)).unwrap();
        let err = b.submit(req(2, 8, 1)).unwrap_err();
        assert_eq!(err, RejectReason::QueueFull { depth: 2, limit: 2 });
        assert_eq!(b.shed(), 1);
        assert_eq!(b.queued(), 2);
    }

    #[test]
    fn cancel_releases_queue_and_active() {
        let mut b = batcher(2, 100);
        b.submit(req(0, 16, 4)).unwrap();
        b.submit(req(1, 16, 4)).unwrap();
        b.admit();
        b.complete_prefill();
        b.submit(req(2, 16, 4)).unwrap();
        assert!(b.cancel(0), "active request cancels");
        assert!(b.cancel(2), "queued request cancels");
        assert!(!b.cancel(0), "double cancel reports unknown");
        assert!(!b.cancel(99), "never-submitted id reports unknown");
        // Only request 1 remains; drain it.
        let mut steps = 0;
        while !b.is_idle() && steps < 50 {
            b.step_decode();
            steps += 1;
        }
        assert_eq!(b.finished(), 1);
        assert_eq!(b.allocator().used_blocks(), 0);
    }

    #[test]
    fn armed_fault_pauses_without_preempting() {
        let mut b = batcher(2, 4);
        b.submit(req(0, 30, 30)).unwrap(); // final context 60 -> 4 blocks
        b.admit();
        b.complete_prefill();
        // Decode past the reserve so further tokens need real growth.
        for _ in 0..2 {
            b.step_decode();
        }
        b.arm_alloc_fault();
        let before = b.active()[0].decoded;
        let events = b.step_decode();
        assert!(events.is_empty(), "no preemption under injected fault");
        assert_eq!(b.active()[0].decoded, before, "sequence stalled in place");
        assert_eq!(b.last_advanced(), 0);
        b.disarm_alloc_fault();
        let mut steps = 0;
        while !b.is_idle() && steps < 200 {
            b.step_decode();
            steps += 1;
        }
        assert!(b.is_idle(), "recovers after the fault clears");
        assert_eq!(b.finished(), 1);
    }

    #[test]
    fn fcfs_admission_and_refill() {
        let mut b = batcher(2, 100);
        for i in 0..4 {
            b.submit(req(i, 16, 2)).unwrap();
        }
        let admitted = b.admit();
        assert_eq!(admitted.len(), 2);
        assert_eq!(b.active().len(), 2);
        assert_eq!(b.queued(), 2);

        b.complete_prefill();
        b.step_decode(); // decoded 1/2
        let finished = b.step_decode(); // decoded 2/2 -> both finish
        assert_eq!(finished.len(), 2);
        assert_eq!(b.finished(), 2);

        // Refill admits the next two in order.
        let refill = b.admit();
        match &refill[0] {
            BatchEvent::Admitted(r) => assert_eq!(r.id, 2),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(b.active().len(), 2);
    }

    #[test]
    fn memory_limits_admission() {
        // 4 blocks of 16 = 64 token slots; each request needs 33 -> 3 blocks.
        let mut b = batcher(8, 4);
        b.submit(req(0, 32, 4)).unwrap();
        b.submit(req(1, 32, 4)).unwrap();
        let events = b.admit();
        assert_eq!(events.len(), 1, "only one request fits");
        assert_eq!(b.queued(), 1);
        // Finishing the first frees room for the second.
        b.complete_prefill();
        for _ in 0..4 {
            b.step_decode();
        }
        assert_eq!(b.finished(), 1);
        assert_eq!(b.admit().len(), 1);
    }

    #[test]
    fn prefill_required_before_decode() {
        let mut b = batcher(1, 10);
        b.submit(req(0, 8, 1)).unwrap();
        b.admit();
        // Without prefill, decode makes no progress.
        assert!(b.step_decode().is_empty());
        assert_eq!(b.decoding(), 0);
        b.complete_prefill();
        assert_eq!(b.decoding(), 1);
        assert_eq!(b.step_decode().len(), 1);
    }

    #[test]
    fn kv_blocks_released_on_finish() {
        let mut b = batcher(1, 10);
        b.submit(req(0, 16, 1)).unwrap();
        b.admit();
        b.complete_prefill();
        assert!(b.allocator().used_blocks() > 0);
        b.step_decode();
        assert_eq!(b.allocator().used_blocks(), 0);
        assert!(b.is_idle());
    }

    #[test]
    fn decode_growth_can_stall_then_recover() {
        // Pool of 3 blocks (48 slots). The long request ends at context
        // 16 + 20 = 36 -> 3 blocks, so it can only finish after the short
        // one releases its block: it must stall and then recover.
        let mut b = batcher(2, 3);
        b.submit(req(0, 16, 20)).unwrap(); // grows over time
        b.submit(req(1, 14, 2)).unwrap(); // short
        b.admit();
        b.complete_prefill();
        // Step until the short one finishes; the long one may stall but
        // must finish eventually.
        let mut steps = 0;
        while !b.is_idle() && steps < 200 {
            b.step_decode();
            b.admit();
            b.complete_prefill();
            steps += 1;
        }
        assert!(b.is_idle(), "deadlocked after {steps} steps");
        assert_eq!(b.finished(), 2);
    }

    #[test]
    fn full_pool_triggers_preemption_not_deadlock() {
        // Two long-running sequences that are co-admitted (2 blocks each,
        // pool of 6) but together outgrow the pool (4 blocks each at the
        // end): the scheduler must preempt one (recompute) instead of
        // deadlocking, and both must eventually finish.
        let mut b = batcher(2, 6); // 96 slots
        b.submit(req(0, 16, 40)).unwrap(); // ends at context 56 -> 4 blocks
        b.submit(req(1, 16, 40)).unwrap(); // same; together they need 8 blocks
        b.admit();
        b.complete_prefill();
        let mut steps = 0;
        while !b.is_idle() && steps < 500 {
            b.step_decode();
            b.admit();
            b.complete_prefill();
            steps += 1;
        }
        assert!(b.is_idle(), "deadlocked after {steps} steps");
        assert_eq!(b.finished(), 2);
        assert!(b.preemptions() >= 1, "expected at least one preemption");
    }

    #[test]
    fn last_advanced_counts_progress() {
        let mut b = batcher(2, 100);
        b.submit(req(0, 8, 3)).unwrap();
        b.submit(req(1, 8, 3)).unwrap();
        b.admit();
        b.complete_prefill();
        b.step_decode();
        assert_eq!(b.last_advanced(), 2);
    }

    #[test]
    fn can_advance_reflects_memory() {
        let mut b = batcher(1, 2); // 32 slots
        b.submit(req(0, 16, 16)).unwrap(); // final context 32 -> exactly fits
        b.admit();
        b.complete_prefill();
        assert!(b.can_advance(0)); // first token covered by reserve
        b.step_decode();
        // Context now 17; the pool (2 blocks) covers up to 32 tokens, so
        // the next several tokens still fit.
        assert!(b.can_advance(0));
        assert!(!b.can_advance(42), "unknown id");
        // An injected fault blocks fresh-block growth but not in-block
        // growth; once the table needs a new block, can_advance flips.
        b.arm_alloc_fault();
        assert!(b.can_advance(0), "still inside the reserved block");
        for _ in 0..15 {
            b.step_decode(); // fill the second block (context 32)
        }
        assert!(b.is_idle(), "in-block tokens finish the request");
    }

    #[test]
    fn try_admit_head_attaches_shared_prefix() {
        let mut b = batcher(2, 8); // 8 blocks of 16
        // Donor: 40-token prompt -> reserve 41 -> 3 blocks.
        b.submit(req(0, 40, 2)).unwrap();
        assert!(matches!(
            b.try_admit_head(&SharedPrefix::default()),
            AdmitOutcome::Admitted(_)
        ));
        let donor_blocks: Vec<usize> = b.allocator().table(0).unwrap().blocks()[..2].to_vec();
        // Pretend a prefix cache holds the donor's first 2 full blocks.
        for &blk in &donor_blocks {
            assert!(b.allocator_mut().retain_block(blk));
        }
        // Consumer shares 32 of its 40 prompt tokens.
        b.submit(req(1, 40, 2)).unwrap();
        let plan = SharedPrefix { blocks: donor_blocks.clone(), tokens: 32 };
        let used_before = b.allocator().used_blocks();
        assert!(matches!(b.try_admit_head(&plan), AdmitOutcome::Admitted(_)));
        // Reserve 41 = 3 blocks; 2 came shared, 1 fresh (no fork: the
        // shared run is block-aligned).
        assert_eq!(b.allocator().used_blocks(), used_before + 1);
        assert_eq!(&b.allocator().table(1).unwrap().blocks()[..2], &donor_blocks[..]);
        assert_eq!(b.allocator().table(1).unwrap().tokens(), 41);
        assert_eq!(b.allocator().shared_blocks(), 2);
        b.allocator().leak_check().unwrap();
    }

    #[test]
    fn try_admit_head_reports_shortfall_without_mutating() {
        let mut b = batcher(4, 3);
        b.submit(req(0, 16, 2)).unwrap();
        assert!(matches!(
            b.try_admit_head(&SharedPrefix::default()),
            AdmitOutcome::Admitted(_)
        ));
        // Head needs 3 blocks (33 tokens) + watermark 1, only 1 free.
        b.submit(req(1, 32, 2)).unwrap();
        let used = b.allocator().used_blocks();
        match b.try_admit_head(&SharedPrefix::default()) {
            AdmitOutcome::NeedBlocks { short_by } => assert_eq!(short_by, 3),
            other => panic!("expected NeedBlocks, got {other:?}"),
        }
        assert_eq!(b.allocator().used_blocks(), used, "failed attempt allocates nothing");
        assert_eq!(b.queued(), 1);
        assert!(matches!(
            b.try_admit_head(&SharedPrefix::default()),
            AdmitOutcome::NeedBlocks { .. }
        ));
        // Empty queue or armed fault block outright.
        b.arm_alloc_fault();
        assert_eq!(b.try_admit_head(&SharedPrefix::default()), AdmitOutcome::Blocked);
    }

    #[test]
    fn mean_context_tracks_growth() {
        let mut b = batcher(1, 100);
        b.submit(req(0, 10, 5)).unwrap();
        b.admit();
        b.complete_prefill();
        let before = b.mean_context();
        b.step_decode();
        assert!((b.mean_context() - before - 1.0).abs() < 1e-9);
    }
}
