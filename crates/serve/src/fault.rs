//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] is a precomputed, seeded schedule of faults over a
//! finite step horizon. The engine consults it at the top of every serving
//! iteration:
//!
//! - **allocator-grow faults** make every KV-block allocation fail for
//!   that one step (a transient memory stall: fragmentation, a competing
//!   tenant, a delayed free), exercising the stall/preemption machinery;
//! - **forward faults** kill one in-flight request at that step (a kernel
//!   fault, a numerical blow-up), which must surface as a typed
//!   [`Terminal::Failed`](crate::error::Terminal::Failed) state rather
//!   than poisoning the batch.
//!
//! Plans are pure data built from a seed, so every chaos run is exactly
//! reproducible: same seed, same faults, same outcome.

use atom_tensor::cast;
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A finite, deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    alloc_steps: BTreeSet<usize>,
    forward_steps: BTreeMap<usize, usize>,
    horizon: usize,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a seeded plan over `horizon` steps: each step
    /// independently carries an allocator-grow fault with probability
    /// `alloc_rate` and a forward fault with probability `forward_rate`.
    ///
    /// Rates are clamped to `[0, 1]`; the plan is a pure function of its
    /// arguments.
    pub fn seeded(seed: u64, horizon: usize, alloc_rate: f64, forward_rate: f64) -> Self {
        let alloc_rate = cast::f64_to_f32(alloc_rate.clamp(0.0, 1.0));
        let forward_rate = cast::f64_to_f32(forward_rate.clamp(0.0, 1.0));
        let mut rng = SeededRng::new(seed ^ 0xFA_07_FA_07);
        let mut plan = FaultPlan {
            horizon,
            ..FaultPlan::default()
        };
        for step in 0..horizon {
            if rng.uniform_f32() < alloc_rate {
                plan.alloc_steps.insert(step);
            }
            if rng.uniform_f32() < forward_rate {
                // Victim slot is resolved modulo the live batch size at
                // fire time, so any slot value is meaningful.
                plan.forward_steps.insert(step, rng.below(64));
            }
        }
        plan
    }

    /// Adds an allocator-grow fault at `step` (builder style).
    pub fn with_alloc_fault(mut self, step: usize) -> Self {
        self.alloc_steps.insert(step);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Adds a forward fault at `step` killing the request in batch slot
    /// `slot % batch_len` (builder style).
    pub fn with_forward_fault(mut self, step: usize, slot: usize) -> Self {
        self.forward_steps.insert(step, slot);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Whether allocator growth is poisoned at `step`.
    pub fn alloc_fault(&self, step: usize) -> bool {
        self.alloc_steps.contains(&step)
    }

    /// The victim slot of a forward fault at `step`, if one fires.
    pub fn forward_fault(&self, step: usize) -> Option<usize> {
        self.forward_steps.get(&step).copied()
    }

    /// Steps covered by the plan; beyond this, no faults fire.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total faults scheduled.
    pub fn fault_count(&self) -> usize {
        self.alloc_steps.len() + self.forward_steps.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.alloc_steps.is_empty() && self.forward_steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 200, 0.3, 0.1);
        let b = FaultPlan::seeded(7, 200, 0.3, 0.1);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 200, 0.3, 0.1);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn rates_bound_fault_density() {
        let none = FaultPlan::seeded(1, 500, 0.0, 0.0);
        assert!(none.is_empty());
        assert_eq!(none.fault_count(), 0);
        let all = FaultPlan::seeded(1, 100, 1.0, 1.0);
        assert_eq!(all.fault_count(), 200);
        for step in 0..100 {
            assert!(all.alloc_fault(step));
            assert!(all.forward_fault(step).is_some());
        }
        assert!(!all.alloc_fault(100), "nothing fires past the horizon");
    }

    #[test]
    fn builder_extends_horizon() {
        let plan = FaultPlan::none()
            .with_alloc_fault(3)
            .with_forward_fault(10, 1);
        assert_eq!(plan.horizon(), 11);
        assert!(plan.alloc_fault(3));
        assert!(!plan.alloc_fault(4));
        assert_eq!(plan.forward_fault(10), Some(1));
        assert_eq!(plan.forward_fault(3), None);
    }
}
