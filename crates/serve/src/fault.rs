//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! A [`FaultPlan`] is a precomputed, seeded schedule of faults over a
//! finite step horizon. The engine consults it at the top of every serving
//! iteration:
//!
//! - **allocator-grow faults** make every KV-block allocation fail for
//!   that one step (a transient memory stall: fragmentation, a competing
//!   tenant, a delayed free), exercising the stall/preemption machinery;
//! - **forward faults** kill one in-flight request at that step (a kernel
//!   fault, a numerical blow-up), which must surface as a typed
//!   [`Terminal::Failed`](crate::error::Terminal::Failed) state rather
//!   than poisoning the batch;
//! - **timeout faults** expire one in-flight request's clock at that step
//!   (a stuck worker tripping the request watchdog): the victim
//!   terminalizes [`Terminal::DeadlineExceeded`](crate::error::Terminal)
//!   even though its real step budget had not elapsed, which is exactly
//!   the spurious-timeout shape a gateway retry policy must absorb;
//! - **cancel faults** drop one in-flight request at that step (the client
//!   hung up): the victim terminalizes
//!   [`Terminal::Cancelled`](crate::error::Terminal) and must *not* be
//!   retried by any layer above.
//!
//! Plans are pure data built from a seed, so every chaos run is exactly
//! reproducible: same seed, same faults, same outcome.

use atom_tensor::cast;
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-step fault probabilities for [`FaultPlan::seeded_chaos`].
///
/// Each rate is the independent probability that the corresponding fault
/// kind fires at any given step; all rates are clamped to `[0, 1]` at plan
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Allocator-grow fault probability per step.
    pub alloc: f64,
    /// Forward (kill-one-request) fault probability per step.
    pub forward: f64,
    /// Spurious-timeout fault probability per step.
    pub timeout: f64,
    /// Client-cancel fault probability per step.
    pub cancel: f64,
}

/// A finite, deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    alloc_steps: BTreeSet<usize>,
    forward_steps: BTreeMap<usize, usize>,
    timeout_steps: BTreeMap<usize, usize>,
    cancel_steps: BTreeMap<usize, usize>,
    horizon: usize,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a seeded plan over `horizon` steps: each step
    /// independently carries an allocator-grow fault with probability
    /// `alloc_rate` and a forward fault with probability `forward_rate`.
    ///
    /// Rates are clamped to `[0, 1]`; the plan is a pure function of its
    /// arguments. Equivalent to [`Self::seeded_chaos`] with zero timeout
    /// and cancel rates.
    pub fn seeded(seed: u64, horizon: usize, alloc_rate: f64, forward_rate: f64) -> Self {
        FaultPlan::seeded_chaos(
            seed,
            horizon,
            FaultRates {
                alloc: alloc_rate,
                forward: forward_rate,
                ..FaultRates::default()
            },
        )
    }

    /// Generates a seeded plan covering all four fault kinds: each step
    /// independently draws allocator, forward, timeout, and cancel faults
    /// at the given [`FaultRates`].
    ///
    /// The plan is a pure function of its arguments: same seed, horizon,
    /// and rates ⇒ the identical schedule, on any host and thread count.
    pub fn seeded_chaos(seed: u64, horizon: usize, rates: FaultRates) -> Self {
        let alloc_rate = cast::f64_to_f32(rates.alloc.clamp(0.0, 1.0));
        let forward_rate = cast::f64_to_f32(rates.forward.clamp(0.0, 1.0));
        let timeout_rate = cast::f64_to_f32(rates.timeout.clamp(0.0, 1.0));
        let cancel_rate = cast::f64_to_f32(rates.cancel.clamp(0.0, 1.0));
        let mut rng = SeededRng::new(seed ^ 0xFA_07_FA_07);
        let mut plan = FaultPlan {
            horizon,
            ..FaultPlan::default()
        };
        for step in 0..horizon {
            if rng.uniform_f32() < alloc_rate {
                plan.alloc_steps.insert(step);
            }
            if rng.uniform_f32() < forward_rate {
                // Victim slot is resolved modulo the live batch size at
                // fire time, so any slot value is meaningful.
                plan.forward_steps.insert(step, rng.below(64));
            }
            if rng.uniform_f32() < timeout_rate {
                plan.timeout_steps.insert(step, rng.below(64));
            }
            if rng.uniform_f32() < cancel_rate {
                plan.cancel_steps.insert(step, rng.below(64));
            }
        }
        plan
    }

    /// Adds an allocator-grow fault at `step` (builder style).
    pub fn with_alloc_fault(mut self, step: usize) -> Self {
        self.alloc_steps.insert(step);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Adds a forward fault at `step` killing the request in batch slot
    /// `slot % batch_len` (builder style).
    pub fn with_forward_fault(mut self, step: usize, slot: usize) -> Self {
        self.forward_steps.insert(step, slot);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Adds a spurious-timeout fault at `step` expiring the request in
    /// batch slot `slot % batch_len` (builder style).
    pub fn with_timeout_fault(mut self, step: usize, slot: usize) -> Self {
        self.timeout_steps.insert(step, slot);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Adds a client-cancel fault at `step` dropping the request in batch
    /// slot `slot % batch_len` (builder style).
    pub fn with_cancel_fault(mut self, step: usize, slot: usize) -> Self {
        self.cancel_steps.insert(step, slot);
        self.horizon = self.horizon.max(step + 1);
        self
    }

    /// Whether allocator growth is poisoned at `step`.
    pub fn alloc_fault(&self, step: usize) -> bool {
        self.alloc_steps.contains(&step)
    }

    /// The victim slot of a forward fault at `step`, if one fires.
    pub fn forward_fault(&self, step: usize) -> Option<usize> {
        self.forward_steps.get(&step).copied()
    }

    /// The victim slot of a spurious-timeout fault at `step`, if one fires.
    pub fn timeout_fault(&self, step: usize) -> Option<usize> {
        self.timeout_steps.get(&step).copied()
    }

    /// The victim slot of a client-cancel fault at `step`, if one fires.
    pub fn cancel_fault(&self, step: usize) -> Option<usize> {
        self.cancel_steps.get(&step).copied()
    }

    /// Steps covered by the plan; beyond this, no faults fire.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total faults scheduled.
    pub fn fault_count(&self) -> usize {
        self.alloc_steps.len()
            + self.forward_steps.len()
            + self.timeout_steps.len()
            + self.cancel_steps.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.alloc_steps.is_empty()
            && self.forward_steps.is_empty()
            && self.timeout_steps.is_empty()
            && self.cancel_steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 200, 0.3, 0.1);
        let b = FaultPlan::seeded(7, 200, 0.3, 0.1);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 200, 0.3, 0.1);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn rates_bound_fault_density() {
        let none = FaultPlan::seeded(1, 500, 0.0, 0.0);
        assert!(none.is_empty());
        assert_eq!(none.fault_count(), 0);
        let all = FaultPlan::seeded(1, 100, 1.0, 1.0);
        assert_eq!(all.fault_count(), 200);
        for step in 0..100 {
            assert!(all.alloc_fault(step));
            assert!(all.forward_fault(step).is_some());
        }
        assert!(!all.alloc_fault(100), "nothing fires past the horizon");
    }

    #[test]
    fn builder_extends_horizon() {
        let plan = FaultPlan::none()
            .with_alloc_fault(3)
            .with_forward_fault(10, 1);
        assert_eq!(plan.horizon(), 11);
        assert!(plan.alloc_fault(3));
        assert!(!plan.alloc_fault(4));
        assert_eq!(plan.forward_fault(10), Some(1));
        assert_eq!(plan.forward_fault(3), None);
    }

    #[test]
    fn timeout_and_cancel_builders() {
        let plan = FaultPlan::none()
            .with_timeout_fault(5, 2)
            .with_cancel_fault(8, 0);
        assert_eq!(plan.horizon(), 9);
        assert_eq!(plan.timeout_fault(5), Some(2));
        assert_eq!(plan.timeout_fault(8), None);
        assert_eq!(plan.cancel_fault(8), Some(0));
        assert_eq!(plan.cancel_fault(5), None);
        assert_eq!(plan.fault_count(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_chaos_covers_all_kinds_deterministically() {
        let rates = FaultRates {
            alloc: 0.2,
            forward: 0.2,
            timeout: 0.2,
            cancel: 0.2,
        };
        let a = FaultPlan::seeded_chaos(11, 400, rates);
        let b = FaultPlan::seeded_chaos(11, 400, rates);
        assert_eq!(a, b);
        let timeouts = (0..400).filter(|&s| a.timeout_fault(s).is_some()).count();
        let cancels = (0..400).filter(|&s| a.cancel_fault(s).is_some()).count();
        assert!(timeouts > 20, "timeout faults should fire (~80 expected)");
        assert!(cancels > 20, "cancel faults should fire (~80 expected)");
        assert!(a.timeout_fault(400).is_none(), "nothing past the horizon");
    }

    #[test]
    fn seeded_matches_seeded_chaos_with_zero_extra_rates() {
        let a = FaultPlan::seeded(9, 300, 0.3, 0.1);
        let b = FaultPlan::seeded_chaos(
            9,
            300,
            FaultRates {
                alloc: 0.3,
                forward: 0.1,
                ..FaultRates::default()
            },
        );
        assert_eq!(a, b);
        assert_eq!((0..300).filter(|&s| a.timeout_fault(s).is_some()).count(), 0);
    }
}
