//! End-to-end serving simulator (paper Fig. 10).
//!
//! Drives the continuous batcher over a ShareGPT-like trace, costing every
//! iteration with the `atom-gpu-sim` roofline model. Reports the paper's
//! two end-to-end metrics — generated tokens per second and average decode
//! latency per token (queuing excluded, §5.3.2) — plus memory statistics
//! for the fixed-memory comparison of Fig. 10c.

use crate::error::ServeError;
use crate::paged::PagedAllocator;
use crate::scheduler::ContinuousBatcher;
use atom_data::Request;
use atom_gpu_sim::graph::{iteration_breakdown, Phase};
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, MemoryModel, SimScheme};
use serde::{Deserialize, Serialize};

/// Results of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Scheme label.
    pub scheme: &'static str,
    /// Batch-size cap of the run.
    pub max_batch: usize,
    /// Generated tokens per second (decode tokens / total busy time).
    pub throughput_tps: f64,
    /// Mean decode-iteration latency per token, seconds.
    pub avg_decode_latency_s: f64,
    /// 99th-percentile decode latency, seconds.
    pub p99_decode_latency_s: f64,
    /// Requests completed.
    pub finished: usize,
    /// Total simulated busy time, seconds.
    pub busy_s: f64,
    /// Peak KV blocks in use.
    pub peak_kv_blocks: usize,
    /// Mean prefill-iteration latency (the time-to-first-token a request
    /// pays once admitted, queuing excluded), seconds.
    pub avg_prefill_latency_s: f64,
    /// Requests rejected at submission (oversized for the KV pool).
    pub rejected: usize,
    /// Recompute preemptions over the run.
    pub preemptions: usize,
}

/// Discrete-iteration serving simulator.
#[derive(Debug, Clone)]
pub struct ServingSimulator {
    /// Model architecture (GPU scale).
    pub config: LlamaGpuConfig,
    /// Device profile.
    pub hw: HardwareProfile,
    /// Serving scheme.
    pub scheme: SimScheme,
    /// Batch-size cap.
    pub max_batch: usize,
    /// KV block size in tokens.
    pub block_size: usize,
}

impl ServingSimulator {
    /// Creates a simulator whose KV pool is sized from the device memory
    /// left after the scheme's weights (the Fig. 10c regime).
    pub fn with_device_memory(
        config: LlamaGpuConfig,
        hw: HardwareProfile,
        scheme: SimScheme,
        max_batch: usize,
    ) -> Self {
        ServingSimulator {
            config,
            hw,
            scheme,
            max_batch,
            block_size: 16,
        }
    }

    fn build_allocator(&self) -> PagedAllocator {
        let mem = MemoryModel::new(self.config, self.scheme, self.hw.mem_bytes);
        PagedAllocator::for_budget(mem.kv_pool_bytes(), mem.kv_bytes_per_token(), self.block_size)
    }

    /// Runs the trace to completion (offline throughput protocol: all
    /// requests available, FCFS, continuous refill — §5.3.2).
    ///
    /// Requests whose final context exceeds the KV pool are rejected at
    /// submission and counted in [`ServingReport::rejected`] rather than
    /// stalling the run.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyTrace`] for an empty trace,
    /// [`ServeError::InvalidConfig`] for a zero batch cap, and
    /// [`ServeError::Stalled`] if the scheduler ever stops making progress
    /// (an internal invariant breach, unreachable for validated traces).
    pub fn run(&self, trace: &[Request]) -> Result<ServingReport, ServeError> {
        if trace.is_empty() {
            return Err(ServeError::EmptyTrace);
        }
        let mut batcher = ContinuousBatcher::new(self.max_batch, self.build_allocator())?;
        let mut rejected = 0usize;
        for &r in trace {
            if batcher.submit(r).is_err() {
                rejected += 1;
            }
        }

        let mut busy_s = 0.0f64;
        let mut decode_tokens = 0u64;
        let mut decode_latencies: Vec<f64> = Vec::new();
        let mut prefill_latencies: Vec<f64> = Vec::new();
        let mut stall_guard = 0usize;
        let mut step = 0usize;

        while !batcher.is_idle() {
            step += 1;
            batcher.admit();
            // Prefill the newly admitted requests (batched prefill phase).
            let fresh = batcher.complete_prefill();
            if !fresh.is_empty() {
                let total_prompt: usize = fresh.iter().map(|r| r.prefill_tokens).sum();
                let q_len = (total_prompt / fresh.len()).max(1);
                let b = iteration_breakdown(
                    &self.config,
                    self.scheme,
                    fresh.len(),
                    0,
                    Phase::Prefill { q_len },
                    &self.hw,
                );
                busy_s += b.total_s();
                prefill_latencies.push(b.total_s());
            }

            // One decode iteration over the whole batch.
            let batch = batcher.decoding();
            if batch > 0 {
                let kv_len = batcher.mean_context() as usize;
                let b = iteration_breakdown(
                    &self.config,
                    self.scheme,
                    batch,
                    kv_len,
                    Phase::Decode,
                    &self.hw,
                );
                let dt = b.total_s();
                busy_s += dt;
                batcher.step_decode();
                let advanced = batcher.last_advanced();
                if advanced > 0 {
                    decode_latencies.push(dt);
                    decode_tokens += advanced as u64;
                    stall_guard = 0;
                } else {
                    // Memory pressure: the batcher preempted a sequence
                    // (recompute-style); the iteration still took time.
                    stall_guard += 1;
                }
            } else {
                stall_guard += 1;
            }
            // Admission validation makes true stalls unreachable; if one
            // ever appears it is an invariant breach, surfaced as a typed
            // error instead of a panic or an infinite loop.
            if stall_guard >= 10_000 {
                return Err(ServeError::Stalled { step });
            }
        }

        decode_latencies.sort_by(f64::total_cmp);
        let avg = decode_latencies.iter().sum::<f64>() / decode_latencies.len().max(1) as f64;
        let p99 = decode_latencies
            .get((decode_latencies.len().saturating_sub(1)) * 99 / 100)
            .copied()
            .unwrap_or(0.0);
        let avg_prefill = prefill_latencies.iter().sum::<f64>()
            / prefill_latencies.len().max(1) as f64;
        Ok(ServingReport {
            scheme: self.scheme.label(),
            max_batch: self.max_batch,
            throughput_tps: decode_tokens as f64 / busy_s,
            avg_decode_latency_s: avg,
            p99_decode_latency_s: p99,
            finished: batcher.finished(),
            busy_s,
            peak_kv_blocks: batcher.allocator().peak_used(),
            avg_prefill_latency_s: avg_prefill,
            rejected,
            preemptions: batcher.preemptions(),
        })
    }

    /// Analytic steady-state point (used for the dashed extrapolated lines
    /// of Fig. 10a/b): decode-iteration latency at exactly `batch`
    /// sequences with `avg_context` cached tokens, ignoring admission.
    pub fn steady_state(&self, batch: usize, avg_context: usize) -> (f64, f64) {
        let b = iteration_breakdown(
            &self.config,
            self.scheme,
            batch,
            avg_context,
            Phase::Decode,
            &self.hw,
        );
        let latency = b.total_s();
        (batch as f64 / latency, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_data::WorkloadSpec;

    fn small_trace(n: usize) -> Vec<Request> {
        let spec = WorkloadSpec {
            max_context: 1024,
            ..WorkloadSpec::default()
        };
        spec.generate(n, 42)
    }

    fn sim(scheme: SimScheme, batch: usize) -> ServingSimulator {
        ServingSimulator::with_device_memory(
            LlamaGpuConfig::llama7b(),
            HardwareProfile::rtx4090(),
            scheme,
            batch,
        )
    }

    #[test]
    fn all_requests_finish() {
        let trace = small_trace(24);
        let report = sim(SimScheme::AtomW4A4, 8).run(&trace).unwrap();
        assert_eq!(report.finished, 24);
        assert!(report.throughput_tps > 0.0);
        assert!(report.avg_decode_latency_s > 0.0);
        assert!(report.p99_decode_latency_s >= report.avg_decode_latency_s);
        // Prefill processes hundreds of prompt tokens, so its iteration
        // latency (TTFT) exceeds a single decode step's.
        assert!(report.avg_prefill_latency_s > report.avg_decode_latency_s);
    }

    #[test]
    fn atom_beats_baselines_in_throughput() {
        // Fig. 10a ordering at a fixed batch.
        let trace = small_trace(32);
        let tput = |scheme| sim(scheme, 16).run(&trace).unwrap().throughput_tps;
        let fp16 = tput(SimScheme::Fp16);
        let w4a16 = tput(SimScheme::W4A16);
        let w8a8 = tput(SimScheme::W8A8);
        let atom = tput(SimScheme::AtomW4A4);
        assert!(atom > w8a8, "atom {atom} vs w8a8 {w8a8}");
        assert!(w8a8 > fp16, "w8a8 {w8a8} vs fp16 {fp16}");
        assert!(atom > w4a16, "atom {atom} vs w4a16 {w4a16}");
    }

    #[test]
    fn throughput_grows_with_batch() {
        let trace = small_trace(64);
        let t8 = sim(SimScheme::AtomW4A4, 8).run(&trace).unwrap().throughput_tps;
        let t32 = sim(SimScheme::AtomW4A4, 32).run(&trace).unwrap().throughput_tps;
        assert!(t32 > 1.5 * t8, "batching effect missing: {t8} -> {t32}");
    }

    #[test]
    fn latency_grows_with_batch_but_stays_sub_100ms() {
        // Fig. 10b: Atom's decode latency stays below 100 ms even at batch
        // 256 (the human reading-speed target).
        let s = sim(SimScheme::AtomW4A4, 256);
        let (_, lat256) = s.steady_state(256, 1024);
        let (_, lat8) = s.steady_state(8, 1024);
        assert!(lat256 > lat8);
        assert!(lat256 < 0.100, "Atom at batch 256: {lat256}s");
        // FP16 at batch 256 blows past the same target.
        let (_, fp16_lat) = sim(SimScheme::Fp16, 256).steady_state(256, 1024);
        assert!(fp16_lat > lat256 * 2.0);
    }

    #[test]
    fn fig10_headline_speedups() {
        // Fixed-memory comparison: each scheme runs at its own max batch
        // (Fig. 10c): Atom ~7.7x FP16 and ~2.5x W8A8 throughput.
        let trace = small_trace(48);
        let run_at_max = |scheme| {
            let mem = MemoryModel::new(LlamaGpuConfig::llama7b(), scheme, HardwareProfile::rtx4090().mem_bytes);
            let ctx = 700; // ShareGPT-like mean context
            let batch = mem.max_batch(ctx).clamp(1, 256);
            sim(scheme, batch).run(&trace).unwrap().throughput_tps
        };
        let fp16 = run_at_max(SimScheme::Fp16);
        let w8a8 = run_at_max(SimScheme::W8A8);
        let atom = run_at_max(SimScheme::AtomW4A4);
        let vs_fp16 = atom / fp16;
        let vs_w8a8 = atom / w8a8;
        assert!((4.0..12.0).contains(&vs_fp16), "Atom vs FP16: {vs_fp16}");
        assert!((1.7..3.5).contains(&vs_w8a8), "Atom vs W8A8: {vs_w8a8}");
    }

    #[test]
    fn empty_trace_is_typed_error() {
        let err = sim(SimScheme::AtomW4A4, 8).run(&[]).unwrap_err();
        assert_eq!(err, ServeError::EmptyTrace);
    }

    #[test]
    fn oversized_requests_rejected_not_stalled() {
        // A trace containing a request far beyond any KV pool must not
        // hang the simulator: it is rejected and reported.
        let mut trace = small_trace(8);
        trace.push(Request {
            id: trace.len(),
            arrival_s: 0.0,
            prefill_tokens: 50_000_000,
            decode_tokens: 1_000,
        });
        let report = sim(SimScheme::AtomW4A4, 8).run(&trace).unwrap();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.finished, 8);
    }

    #[test]
    fn steady_state_consistency() {
        let s = sim(SimScheme::W8A8, 64);
        let (tput, lat) = s.steady_state(64, 512);
        assert!((tput - 64.0 / lat).abs() < 1e-9);
    }
}
