//! LLM serving substrate for the Atom reproduction.
//!
//! The paper integrates Atom into Punica with FlashInfer + PagedAttention
//! and continuous batching (§4.5, §5.3.2). This crate rebuilds that stack:
//!
//! - [`paged`] — a vLLM-style paged KV-cache block allocator with per-
//!   sequence block tables and byte accounting per quantization scheme.
//! - [`scheduler`] — Orca-style continuous batching: FCFS admission,
//!   iteration-level refill when requests finish.
//! - [`simulate`] — the end-to-end serving simulator driving the
//!   `atom-gpu-sim` cost model over ShareGPT-like traces; regenerates the
//!   Fig. 10 throughput / latency / fixed-memory comparisons.
//! - [`engine`] — a *real* CPU serving engine running the trained zoo
//!   models with Atom-quantized weights and KV caches end to end, proving
//!   the full stack functions (scheduling, paging, quantized decode).
//! - [`error`] — the typed failure model: every runtime condition (bad
//!   input, memory pressure, faults) surfaces as a [`ServeError`] or a
//!   per-request [`Terminal`] state, never a panic.
//! - [`fault`] — deterministic, seeded fault injection ([`FaultPlan`])
//!   driving the chaos tests.

#![forbid(unsafe_code)]
// The serving hot path must never panic on traffic (see the error-model
// docs above); `atom-lint` enforces the broader panic-freedom rule and
// clippy backs it up at the compiler level. Tests are exempt: unwrapping
// in a test is the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod engine;
pub mod error;
pub mod fault;
pub mod paged;
pub mod scheduler;
pub mod simulate;

pub use engine::{Completion, CpuEngine, Outcome, PressurePolicy, RequestStats, SubmitOptions};
pub use error::{RejectReason, ServeError, Terminal};
pub use fault::FaultPlan;
pub use paged::{BlockTable, PagedAllocator, SharedPrefix};
pub use scheduler::{AdmitOutcome, BatchEvent, ContinuousBatcher, RequestState};
pub use simulate::{ServingReport, ServingSimulator};

// The prefix-cache configuration and stats types cross the engine's public
// API (`CpuEngine::with_prefix_cache` / `prefix_stats`); re-export them so
// downstream crates need no direct `atom-prefix` dependency.
pub use atom_prefix::{PrefixCacheStats, PrefixConfig};
