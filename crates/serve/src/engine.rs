//! Real CPU serving engine over the trained models.
//!
//! This is the functional end of the stack: actual tokens flow through the
//! actual (optionally Atom-quantized) model under continuous batching with
//! paged-KV admission control. It will not be fast on a CPU — the paper's
//! speed story lives in [`crate::simulate`] — but it proves the entire
//! serving path works: FCFS admission, prefill, iteration-level decode,
//! quantized KV caches, block accounting, and retirement.

use crate::paged::PagedAllocator;
use crate::scheduler::ContinuousBatcher;
use atom_data::Request;
use atom_nn::{KvStore, LinearLayer, LlamaModel};
use atom_tensor::ops;
use std::collections::HashMap;

/// A completed generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Request id (submission order).
    pub id: usize,
    /// Generated token ids (greedy decoding).
    pub tokens: Vec<u16>,
}

/// Factory producing a fresh KV cache per admitted sequence.
pub type CacheFactory = Box<dyn Fn() -> Box<dyn KvStore>>;

struct SeqState {
    cache: Box<dyn KvStore>,
    generated: Vec<u16>,
    next_input: u16,
}

/// CPU serving engine: continuous batching over a real model.
pub struct CpuEngine<L: LinearLayer> {
    model: LlamaModel<L>,
    new_cache: CacheFactory,
    batcher: ContinuousBatcher,
    prompts: HashMap<usize, Vec<u16>>,
    states: HashMap<usize, SeqState>,
    completions: Vec<Completion>,
    next_id: usize,
    decode_steps: usize,
}

impl<L: LinearLayer> CpuEngine<L> {
    /// Creates an engine with a batch cap and a KV pool of `kv_pool_tokens`
    /// token slots (16-token blocks).
    pub fn new(
        model: LlamaModel<L>,
        new_cache: CacheFactory,
        max_batch: usize,
        kv_pool_tokens: usize,
    ) -> Self {
        let allocator = PagedAllocator::new(kv_pool_tokens / 16, 16);
        CpuEngine {
            model,
            new_cache,
            batcher: ContinuousBatcher::new(max_batch, allocator),
            prompts: HashMap::new(),
            states: HashMap::new(),
            completions: Vec::new(),
            next_id: 0,
            decode_steps: 0,
        }
    }

    /// Submits a prompt for generation of `max_new` tokens; returns the
    /// request id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or `max_new == 0`.
    pub fn submit(&mut self, prompt: Vec<u16>, max_new: usize) -> usize {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(max_new > 0, "must generate at least one token");
        let id = self.next_id;
        self.next_id += 1;
        self.batcher.submit(Request {
            id,
            arrival_s: 0.0,
            prefill_tokens: prompt.len(),
            decode_tokens: max_new,
        });
        self.prompts.insert(id, prompt);
        id
    }

    /// Runs one serving iteration: admit, prefill the newly admitted, then
    /// advance every decoding sequence by one token. Returns `false` when
    /// everything is finished.
    pub fn step(&mut self) -> bool {
        if self.batcher.is_idle() {
            return false;
        }
        self.batcher.admit();

        // Prefill phase for the newly admitted sequences. Prompts stay
        // stored so a preempted sequence can be recomputed later.
        for req in self.batcher.complete_prefill() {
            let prompt = self.prompts.get(&req.id).expect("prompt stored").clone();
            let mut cache = (self.new_cache)();
            let logits = self.model.forward(&prompt, cache.as_mut());
            let first = ops::argmax(logits.row(logits.rows() - 1)) as u16;
            self.states.insert(
                req.id,
                SeqState {
                    cache,
                    generated: Vec::new(),
                    next_input: first,
                },
            );
        }

        // Decode phase: one token for every sequence the scheduler will
        // actually advance (mirrors step_decode's block accounting so the
        // real KV caches never outrun the paged bookkeeping).
        let active_ids: Vec<usize> = self
            .batcher
            .active()
            .iter()
            .filter(|s| s.prefilled && self.batcher.can_advance(s.request.id))
            .map(|s| s.request.id)
            .collect();
        for id in &active_ids {
            let state = self.states.get_mut(id).expect("state exists");
            // The token chosen last iteration becomes output + next input.
            state.generated.push(state.next_input);
            let logits = self
                .model
                .forward(&[state.next_input], state.cache.as_mut());
            state.next_input = ops::argmax(logits.row(0)) as u16;
        }
        if !active_ids.is_empty() {
            self.decode_steps += 1;
        }
        for event in self.batcher.step_decode() {
            match event {
                crate::scheduler::BatchEvent::Finished(req) => {
                    let state = self.states.remove(&req.id).expect("state exists");
                    self.prompts.remove(&req.id);
                    self.completions.push(Completion {
                        id: req.id,
                        tokens: state.generated,
                    });
                }
                crate::scheduler::BatchEvent::Preempted(req) => {
                    // Recompute preemption: drop the state; the request is
                    // back in the queue and will prefill again from its
                    // stored prompt.
                    self.states.remove(&req.id);
                }
                crate::scheduler::BatchEvent::Admitted(_) => {}
            }
        }
        true
    }

    /// Runs until all submitted requests complete.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler stops making progress (a request larger than
    /// the KV pool).
    pub fn run_to_completion(&mut self) -> &[Completion] {
        let mut stalls = 0;
        while !self.batcher.is_idle() {
            let before = self.completions.len() + self.decode_steps;
            self.step();
            if self.completions.len() + self.decode_steps == before {
                stalls += 1;
                assert!(stalls < 8, "engine stalled: request exceeds KV pool");
            } else {
                stalls = 0;
            }
        }
        &self.completions
    }

    /// Completions so far (submission order not guaranteed).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Decode iterations executed.
    pub fn decode_steps(&self) -> usize {
        self.decode_steps
    }

    /// The underlying batcher (for memory/queue introspection).
    pub fn batcher(&self) -> &ContinuousBatcher {
        &self.batcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::kv::Fp32KvCache;
    use atom_nn::{DenseLinear, ModelConfig};

    fn tiny_engine(max_batch: usize, pool: usize) -> CpuEngine<DenseLinear> {
        let config = ModelConfig {
            dim: 32,
            layers: 1,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 48,
            ..ModelConfig::default()
        };
        let model = LlamaModel::random_init(config, 3);
        CpuEngine::new(
            model,
            Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
            max_batch,
            pool,
        )
    }

    #[test]
    fn serves_all_requests() {
        let mut e = tiny_engine(2, 1024);
        let a = e.submit(vec![1, 2, 3], 4);
        let b = e.submit(vec![4, 5], 3);
        let c = e.submit(vec![6], 2);
        let done = e.run_to_completion().to_vec();
        assert_eq!(done.len(), 3);
        let by_id = |id| done.iter().find(|c| c.id == id).unwrap();
        assert_eq!(by_id(a).tokens.len(), 4);
        assert_eq!(by_id(b).tokens.len(), 3);
        assert_eq!(by_id(c).tokens.len(), 2);
    }

    #[test]
    fn batched_serving_matches_solo_generation() {
        // Continuous batching must not change each request's output.
        let mut solo = tiny_engine(1, 1024);
        solo.submit(vec![10, 20, 30], 5);
        let solo_out = solo.run_to_completion()[0].tokens.clone();

        let mut batched = tiny_engine(3, 1024);
        batched.submit(vec![10, 20, 30], 5);
        batched.submit(vec![42, 17], 5);
        batched.submit(vec![7, 8, 9, 10], 5);
        let batched_all = batched.run_to_completion().to_vec();
        let same = batched_all.iter().find(|c| c.id == 0).unwrap();
        assert_eq!(same.tokens, solo_out);
    }

    #[test]
    fn tight_memory_still_completes() {
        // Pool of 96 slots with three 40+-slot requests: they must be
        // served in waves rather than concurrently.
        let mut e = tiny_engine(4, 96);
        for _ in 0..3 {
            e.submit(vec![5; 40], 4);
        }
        let done = e.run_to_completion().len();
        assert_eq!(done, 3);
    }

    #[test]
    fn generated_tokens_in_vocabulary() {
        let mut e = tiny_engine(2, 512);
        e.submit(vec![50, 60], 6);
        for c in e.run_to_completion() {
            assert!(c.tokens.iter().all(|&t| (t as usize) < 96));
        }
    }
}
