//! Real CPU serving engine over the trained models.
//!
//! This is the functional end of the stack: actual tokens flow through the
//! actual (optionally Atom-quantized) model under continuous batching with
//! paged-KV admission control. It will not be fast on a CPU — the paper's
//! speed story lives in [`crate::simulate`] — but it proves the entire
//! serving path works: FCFS admission, prefill, iteration-level decode,
//! quantized KV caches, block accounting, and retirement.
//!
//! # Robustness model
//!
//! The engine never panics on traffic. Every submission reaches exactly
//! one [`Terminal`] state — `Completed`, `Rejected`, `Cancelled`,
//! `DeadlineExceeded`, or `Failed` — recorded as an [`Outcome`] with
//! per-request latency accounting. Three mechanisms keep it alive under
//! hostile conditions:
//!
//! - **admission validation**: degenerate or pool-exceeding requests are
//!   refused at [`CpuEngine::submit`] with a typed [`RejectReason`];
//! - **graceful degradation**: past configurable [`PressurePolicy`]
//!   watermarks, new admissions receive a lower-precision (Atom-quantized)
//!   KV cache and the newest submissions are shed — the paper's KV
//!   quantization used as a memory-pressure valve;
//! - **fault tolerance**: a deterministic [`FaultPlan`] can poison block
//!   allocation or kill an in-flight request at chosen steps; the engine
//!   absorbs both without leaking blocks or losing terminal events.

use crate::error::{RejectReason, ServeError, Terminal};
use crate::fault::FaultPlan;
use crate::paged::{PagedAllocator, SharedPrefix};
use crate::scheduler::{AdmitOutcome, BatchEvent, ContinuousBatcher};
use atom_data::Request;
use atom_nn::{KvStore, LinearLayer, LlamaModel};
use atom_parallel::{Pool, PoolError};
use atom_prefix::{
    Flavor, MatchOutcome, PrefixCacheStats, PrefixConfig, RadixIndex, Snapshot, FLAVOR_DEGRADED,
    FLAVOR_NORMAL,
};
use atom_telemetry::{names, Telemetry};
use atom_tensor::cast;
use atom_tensor::ops;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A completed generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Request id (submission order).
    pub id: usize,
    /// Generated token ids (greedy decoding).
    pub tokens: Vec<u16>,
}

/// Factory producing a fresh KV cache per admitted sequence.
pub type CacheFactory = Box<dyn Fn() -> Box<dyn KvStore>>;

/// Per-request lifecycle accounting, in engine steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// Step count at submission.
    pub submitted_step: usize,
    /// Step of first admission into the batch (`None`: never admitted).
    pub admitted_step: Option<usize>,
    /// Step at which the first token was generated (`None`: none was).
    pub first_token_step: Option<usize>,
    /// Times this request was recompute-preempted.
    pub preemptions: usize,
    /// Whether admission placed it in a degraded (low-bit) KV cache.
    pub degraded_kv: bool,
    /// Prompt tokens served from the prefix cache instead of being
    /// prefilled (0 = no hit or cache disabled).
    pub prefix_tokens: usize,
    /// The step budget the request was submitted with, if any.
    pub deadline_steps: Option<usize>,
    /// Step at which the request reached its terminal state (`None` while
    /// in flight).
    pub finished_step: Option<usize>,
}

impl RequestStats {
    /// Steps spent queued before first admission.
    pub fn queue_steps(&self) -> Option<usize> {
        self.admitted_step.map(|a| a - self.submitted_step)
    }

    /// Time-to-first-token in steps (includes queue time).
    pub fn ttft_steps(&self) -> Option<usize> {
        self.first_token_step.map(|t| t - self.submitted_step)
    }

    /// Time-per-output-token in milli-steps (1000 = one step per token),
    /// averaged over the decode span for `tokens` generated tokens. `None`
    /// until the request is terminal or when fewer than two tokens came out.
    pub fn tpot_millisteps(&self, tokens: usize) -> Option<u64> {
        let first = self.first_token_step?;
        let finished = self.finished_step?;
        if tokens < 2 {
            return None;
        }
        Some(((finished - first) * 1000 / (tokens - 1)) as u64)
    }
}

/// The terminal record of one request: exactly one per submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Request id (submission order; rejected submissions consume one too).
    pub id: usize,
    /// How the request ended.
    pub terminal: Terminal,
    /// Tokens generated before the terminal state (full generation for
    /// `Completed`, partial for cancel/deadline/failure, empty otherwise).
    pub tokens: Vec<u16>,
    /// Lifecycle accounting.
    pub stats: RequestStats,
}

/// Submission parameters beyond the prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Tokens to generate.
    pub max_new: usize,
    /// Optional step budget: if the request has not completed within this
    /// many engine steps of submission it terminates `DeadlineExceeded`.
    pub deadline_steps: Option<usize>,
}

impl SubmitOptions {
    /// Options generating `max_new` tokens with no deadline.
    pub fn new(max_new: usize) -> Self {
        SubmitOptions {
            max_new,
            deadline_steps: None,
        }
    }

    /// Sets a step budget (builder style).
    pub fn with_deadline(mut self, steps: usize) -> Self {
        self.deadline_steps = Some(steps);
        self
    }
}

/// Load-shedding and graceful-degradation watermarks.
///
/// When KV-pool utilization or queue depth crosses these thresholds the
/// engine (a) hands *new* admissions a degraded (lower-precision) KV cache
/// if one was configured, and (b) sheds the newest submissions with
/// [`RejectReason::QueueFull`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressurePolicy {
    /// KV-pool utilization fraction (used / total blocks, measured after
    /// admission) at or above which new admissions degrade. Values above
    /// 1.0 disable utilization-triggered degradation.
    pub degrade_kv_at: f64,
    /// Queue depth at or above which new admissions degrade.
    pub degrade_queue_depth: Option<usize>,
    /// Queue depth at which new submissions are shed.
    pub shed_queue_depth: Option<usize>,
}

impl Default for PressurePolicy {
    fn default() -> Self {
        PressurePolicy {
            degrade_kv_at: 2.0, // disabled
            degrade_queue_depth: None,
            shed_queue_depth: None,
        }
    }
}

struct SeqState {
    cache: Box<dyn KvStore>,
    generated: Vec<u16>,
    next_input: u16,
}

/// One unit of batched model work handed to the thread pool. `Some(prompt)`
/// runs a full prefill forward; `None` advances the sequence by one decode
/// token from `state.next_input`. Each job exclusively owns its state, so
/// workers never share mutable data. `wall_ns` is filled by the worker with
/// the forward's wall time — measurement only, never control flow, so token
/// streams stay bit-identical at any pool width.
struct ForwardJob {
    id: usize,
    state: SeqState,
    prompt: Option<Vec<u16>>,
    wall_ns: u64,
}

/// Admission-time plan for one cache-on request: the KV flavor its pressure
/// prediction chose, and the prefix hit (if any) its prefill will replay
/// instead of recomputing.
struct PlannedAdmission {
    flavor: Flavor,
    tokens: usize,
    snapshot: Option<Arc<Snapshot>>,
}

/// Monotonic prefix-cache event totals. A second copy tracks what was
/// already reported so per-step telemetry can emit deltas.
#[derive(Clone, Copy, Default)]
struct PrefixCounters {
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    cow_forks: u64,
}

/// Engine-side prefix-cache runtime: the radix index over completed
/// prefills, per-request admission plans, and event counters.
struct PrefixCacheState {
    index: RadixIndex,
    planned: BTreeMap<usize, PlannedAdmission>,
    config: PrefixConfig,
    totals: PrefixCounters,
    reported: PrefixCounters,
}

/// Job indices whose pool worker panicked (chunk size 1 ⇒ chunk index ==
/// job index), plus the first panic message observed.
struct PoolFailure {
    failed: Vec<usize>,
    message: String,
}

impl PoolFailure {
    fn reason_for(&self, idx: usize) -> Option<&str> {
        self.failed.contains(&idx).then_some(self.message.as_str())
    }
}

/// Where engine metrics go: the process-global telemetry instance, or an
/// engine-owned one (tests and benches that need isolation).
#[derive(Clone)]
enum TelemetrySink {
    Global,
    Owned(Arc<Telemetry>),
}

impl TelemetrySink {
    fn get(&self) -> &Telemetry {
        match self {
            TelemetrySink::Global => Telemetry::global(),
            TelemetrySink::Owned(t) => t,
        }
    }
}

fn terminal_metric(terminal: &Terminal) -> &'static str {
    match terminal {
        Terminal::Completed => names::ENGINE_TERMINAL_COMPLETED,
        Terminal::Rejected(_) => names::ENGINE_TERMINAL_REJECTED,
        Terminal::Cancelled => names::ENGINE_TERMINAL_CANCELLED,
        Terminal::DeadlineExceeded => names::ENGINE_TERMINAL_DEADLINE,
        Terminal::Failed { .. } => names::ENGINE_TERMINAL_FAILED,
    }
}

/// CPU serving engine: continuous batching over a real model.
///
/// # Example
///
/// Serve two prompts to completion on a tiny FP32 model; every submission
/// reaches exactly one terminal state and batching never changes tokens:
///
/// ```
/// use atom_nn::{kv::Fp32KvCache, LlamaModel, ModelConfig};
/// use atom_serve::CpuEngine;
///
/// let config = ModelConfig {
///     dim: 32, layers: 1, heads: 4, kv_heads: 4, ffn_dim: 48,
///     ..ModelConfig::default()
/// };
/// let model = LlamaModel::random_init(config, 3);
/// let mut engine = CpuEngine::new(
///     model,
///     Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
///     2,    // max batch
///     1024, // KV pool tokens
/// )
/// .expect("valid config");
/// let a = engine.submit(vec![1, 2, 3], 4).expect("accepted");
/// engine.submit(vec![9, 8], 3).expect("accepted");
/// let done = engine.run_to_completion();
/// assert_eq!(done.len(), 2);
/// let first = done.iter().find(|c| c.id == a).expect("completed");
/// assert_eq!(first.tokens.len(), 4);
/// ```
pub struct CpuEngine<L: LinearLayer> {
    model: LlamaModel<L>,
    new_cache: CacheFactory,
    degraded_cache: Option<CacheFactory>,
    policy: PressurePolicy,
    fault: FaultPlan,
    batcher: ContinuousBatcher,
    prefix: Option<PrefixCacheState>,
    prompts: BTreeMap<usize, Vec<u16>>,
    states: BTreeMap<usize, SeqState>,
    meta: BTreeMap<usize, RequestStats>,
    prefill_wall: BTreeMap<usize, u64>,
    outcomes: Vec<Outcome>,
    completions: Vec<Completion>,
    next_id: usize,
    clock: usize,
    decode_steps: usize,
    degraded_admissions: usize,
    rejected: usize,
    telemetry: TelemetrySink,
    pool: Pool,
}

impl<L: LinearLayer> std::fmt::Debug for CpuEngine<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuEngine")
            .field("in_flight", &self.states.len())
            .field("queued_prompts", &self.prompts.len())
            .field("clock", &self.clock)
            .field("decode_steps", &self.decode_steps)
            .field("degraded_admissions", &self.degraded_admissions)
            .field("rejected", &self.rejected)
            .finish_non_exhaustive()
    }
}

impl<L: LinearLayer> CpuEngine<L> {
    /// Consecutive no-progress steps after which in-flight requests are
    /// failed instead of looping forever (livelock circuit breaker; with
    /// validated admission it should never trip outside pathological
    /// fault plans).
    const STALL_LIMIT: usize = 10_000;

    /// Creates an engine with a batch cap and a KV pool of `kv_pool_tokens`
    /// token slots (16-token blocks).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `max_batch == 0` or the
    /// pool cannot hold a single block.
    pub fn new(
        model: LlamaModel<L>,
        new_cache: CacheFactory,
        max_batch: usize,
        kv_pool_tokens: usize,
    ) -> Result<Self, ServeError> {
        if kv_pool_tokens < 16 {
            return Err(ServeError::InvalidConfig(
                "kv pool must hold at least one 16-token block",
            ));
        }
        let allocator = PagedAllocator::new(kv_pool_tokens / 16, 16);
        Ok(CpuEngine {
            model,
            new_cache,
            degraded_cache: None,
            policy: PressurePolicy::default(),
            fault: FaultPlan::none(),
            batcher: ContinuousBatcher::new(max_batch, allocator)?,
            prefix: None,
            prompts: BTreeMap::new(),
            states: BTreeMap::new(),
            meta: BTreeMap::new(),
            prefill_wall: BTreeMap::new(),
            outcomes: Vec::new(),
            completions: Vec::new(),
            next_id: 0,
            clock: 0,
            decode_steps: 0,
            degraded_admissions: 0,
            rejected: 0,
            telemetry: TelemetrySink::Global,
            pool: *Pool::global(),
        })
    }

    /// Runs batched prefill and decode forwards on `pool` instead of the
    /// process-wide pool. Scheduling decisions (admission, preemption,
    /// deadline sweeps) never depend on the pool width, and each request's
    /// forward is computed independently, so generated tokens are identical
    /// for any thread count — including under chaos/fault schedules.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Routes this engine's metrics into `telemetry` instead of the process
    /// global. Used by tests and benches that need an isolated registry.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = TelemetrySink::Owned(telemetry);
        self
    }

    /// Installs the degraded KV-cache factory used for admissions under
    /// memory pressure (typically an Atom INT4 quantized cache).
    pub fn with_degraded_cache(mut self, factory: CacheFactory) -> Self {
        self.degraded_cache = Some(factory);
        self
    }

    /// Installs the load-shedding / degradation watermarks.
    pub fn with_policy(mut self, policy: PressurePolicy) -> Self {
        self.set_policy(policy);
        self
    }

    /// Replaces the pressure watermarks at runtime. The gateway's circuit
    /// breaker uses this to push the engine into brownout (e.g. degrading
    /// every new admission to the low-bit KV cache) and to restore the
    /// baseline policy on recovery.
    pub fn set_policy(&mut self, policy: PressurePolicy) {
        self.policy = policy;
        self.batcher.set_queue_limit(policy.shed_queue_depth);
    }

    /// The currently installed pressure watermarks.
    pub fn policy(&self) -> PressurePolicy {
        self.policy
    }

    /// Current KV-pool utilization as a fraction of total blocks.
    pub fn kv_utilization(&self) -> f64 {
        let total = self.batcher.allocator().total_blocks().max(1);
        self.batcher.allocator().used_blocks() as f64 / total as f64
    }

    /// Installs a deterministic fault-injection plan (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Enables the radix-tree prefix cache: completed prefills are indexed
    /// by token content, and later admissions whose prompt shares a cached
    /// prefix attach the existing (refcounted, copy-on-write) KV blocks and
    /// prefill only the suffix. Token streams are bit-identical with the
    /// cache on or off — only the prefill work changes.
    pub fn with_prefix_cache(mut self, config: PrefixConfig) -> Self {
        let block_size = self.batcher.allocator().block_size();
        self.prefix = Some(PrefixCacheState {
            index: RadixIndex::new(block_size),
            planned: BTreeMap::new(),
            config,
            totals: PrefixCounters::default(),
            reported: PrefixCounters::default(),
        });
        self
    }

    /// Submits a prompt for generation of `max_new` tokens; returns the
    /// request id.
    ///
    /// # Errors
    ///
    /// Returns the typed [`RejectReason`] when the request cannot be
    /// served (empty prompt, zero tokens, exceeds the KV pool, or the
    /// queue shed watermark was reached). Rejected submissions still
    /// consume an id and leave a [`Terminal::Rejected`] outcome.
    pub fn submit(&mut self, prompt: Vec<u16>, max_new: usize) -> Result<usize, RejectReason> {
        self.submit_with(prompt, SubmitOptions::new(max_new))
    }

    /// [`Self::submit`] with explicit options (deadline support).
    ///
    /// # Errors
    ///
    /// See [`Self::submit`].
    pub fn submit_with(
        &mut self,
        prompt: Vec<u16>,
        options: SubmitOptions,
    ) -> Result<usize, RejectReason> {
        let id = self.next_id;
        self.next_id += 1;
        let stats = RequestStats {
            submitted_step: self.clock,
            deadline_steps: options.deadline_steps,
            ..RequestStats::default()
        };
        let reason = if prompt.is_empty() {
            Some(RejectReason::EmptyPrompt)
        } else if options.max_new == 0 {
            Some(RejectReason::ZeroDecodeTokens)
        } else {
            self.batcher
                .submit(Request {
                    id,
                    arrival_s: 0.0,
                    prefill_tokens: prompt.len(),
                    decode_tokens: options.max_new,
                })
                .err()
        };
        if let Some(reason) = reason {
            self.rejected += 1;
            self.telemetry
                .get()
                .counter_add(names::ENGINE_TERMINAL_REJECTED, 1);
            self.outcomes.push(Outcome {
                id,
                terminal: Terminal::Rejected(reason),
                tokens: Vec::new(),
                stats: RequestStats {
                    finished_step: Some(self.clock),
                    ..stats
                },
            });
            return Err(reason);
        }
        self.prompts.insert(id, prompt);
        self.meta.insert(id, stats);
        Ok(id)
    }

    /// Cancels an in-flight (queued or active) request. Its KV blocks are
    /// released and it terminates [`Terminal::Cancelled`] with whatever
    /// tokens it had generated.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownRequest`] if the id was never
    /// submitted or is already terminal.
    pub fn cancel(&mut self, id: usize) -> Result<(), ServeError> {
        if !self.meta.contains_key(&id) {
            return Err(ServeError::UnknownRequest(id));
        }
        self.terminalize(id, Terminal::Cancelled);
        Ok(())
    }

    /// Moves a live request to a terminal state: removes every trace of it
    /// from the scheduler, allocator, and engine maps, then records the
    /// outcome. The single funnel through which every non-completed
    /// request exits guarantees the exactly-once terminal property.
    fn terminalize(&mut self, id: usize, terminal: Terminal) {
        let Some(mut stats) = self.meta.remove(&id) else {
            debug_assert!(false, "terminalize on unknown request {id}");
            return;
        };
        stats.finished_step = Some(self.clock);
        self.telemetry.get().counter_add(terminal_metric(&terminal), 1);
        self.batcher.cancel(id);
        self.prompts.remove(&id);
        if let Some(prefix) = self.prefix.as_mut() {
            prefix.planned.remove(&id);
        }
        let tokens = self
            .states
            .remove(&id)
            .map(|s| s.generated)
            .unwrap_or_default();
        self.outcomes.push(Outcome {
            id,
            terminal,
            tokens,
            stats,
        });
    }

    /// Runs one serving iteration: expire deadlines, inject scheduled
    /// faults, admit, prefill the newly admitted, then advance every
    /// decoding sequence by one token. Returns `false` when everything is
    /// finished.
    pub fn step(&mut self) -> bool {
        if self.batcher.is_idle() {
            return false;
        }
        let sink = self.telemetry.clone();
        let tel = sink.get();
        let _step_timer = tel.timer(names::ENGINE_STEP_WALL_NS);
        let _step_span = tel.span(names::SPAN_ENGINE_STEP, &[]);
        self.clock += 1;

        // Deadline sweep: a request whose step budget elapsed terminates
        // before it can consume another iteration. `meta` is a BTreeMap
        // keyed by request id, so same-step expiries terminalize in id
        // order by construction (the PR 5 HashMap-ordered sweep bug is
        // structurally impossible now; atom-lint's unordered-iteration
        // rule keeps it that way).
        let expired: Vec<usize> = self
            .meta
            .iter()
            .filter(|(_, s)| {
                s.deadline_steps
                    .is_some_and(|d| self.clock > s.submitted_step + d)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.terminalize(id, Terminal::DeadlineExceeded);
        }

        // Injected allocator fault: poison block growth for this step.
        if self.fault.alloc_fault(self.clock) {
            self.batcher.arm_alloc_fault();
            tel.counter_add(names::ENGINE_FAULTS, 1);
        }

        if self.prefix.is_some() {
            self.admit_with_cache();
        } else {
            for event in self.batcher.admit() {
                if let BatchEvent::Admitted(req) = event {
                    if let Some(stats) = self.meta.get_mut(&req.id) {
                        stats.admitted_step.get_or_insert(self.clock);
                    }
                }
            }
        }

        // Prefill phase for the newly admitted sequences. Prompts stay
        // stored so a preempted sequence can be recomputed later. Under
        // pressure, new admissions receive the degraded KV cache.
        let used = self.batcher.allocator().used_blocks();
        let total = self.batcher.allocator().total_blocks();
        let util = used as f64 / total.max(1) as f64;
        tel.record(names::ENGINE_QUEUE_DEPTH, self.batcher.queued() as u64);
        tel.gauge_set(names::ENGINE_KV_USED_BLOCKS, used as i64);
        tel.gauge_set(names::ENGINE_KV_TOTAL_BLOCKS, total as i64);
        tel.record(
            names::ENGINE_KV_OCCUPANCY_PERMILLE,
            (util * 1000.0).round() as u64,
        );
        let pressured = util >= self.policy.degrade_kv_at
            || self
                .policy
                .degrade_queue_depth
                .is_some_and(|d| self.batcher.queued() >= d);
        let mut prefill_jobs: Vec<ForwardJob> = Vec::new();
        let mut prefill_flavor: BTreeMap<usize, Flavor> = BTreeMap::new();
        for req in self.batcher.complete_prefill() {
            let Some(prompt) = self.prompts.get(&req.id).cloned() else {
                debug_assert!(false, "prefill without stored prompt");
                continue;
            };
            // Cache-on admissions chose their flavor (and possibly a prefix
            // hit) at admission time; the cache-off path keeps the original
            // per-step pressure decision.
            let planned = self.prefix.as_mut().and_then(|p| p.planned.remove(&req.id));
            let degraded = match &planned {
                Some(plan) => plan.flavor == FLAVOR_DEGRADED && self.degraded_cache.is_some(),
                None => pressured && self.degraded_cache.is_some(),
            };
            let reused = planned.as_ref().and_then(|plan| {
                plan.snapshot
                    .as_ref()
                    .filter(|_| plan.tokens > 0)
                    .map(|snap| (plan.tokens, Arc::clone(snap)))
            });
            let cache = match &reused {
                // A hit replays the donor's snapshot cut to the matched
                // prefix — bit-identical to prefilling those tokens, since
                // both stores quantize per token row.
                Some((tokens, snapshot)) => snapshot.clone_prefix(*tokens),
                None => match (&self.degraded_cache, degraded) {
                    (Some(factory), true) => factory(),
                    _ => (self.new_cache)(),
                },
            };
            if degraded {
                self.degraded_admissions += 1;
                tel.counter_add(names::ENGINE_DEGRADED_ADMISSIONS, 1);
                if let Some(stats) = self.meta.get_mut(&req.id) {
                    stats.degraded_kv = true;
                }
            }
            if self.prefix.is_some() {
                prefill_flavor.insert(
                    req.id,
                    if degraded { FLAVOR_DEGRADED } else { FLAVOR_NORMAL },
                );
            }
            let skip = reused.as_ref().map(|(t, _)| *t).unwrap_or(0);
            if skip > 0 {
                if let Some(stats) = self.meta.get_mut(&req.id) {
                    stats.prefix_tokens = stats.prefix_tokens.max(skip);
                }
            }
            // A hit forwards only the un-cached suffix; the match cap of
            // `prompt_len - 1` guarantees at least one token remains to
            // produce the first decode logits.
            let forward = prompt.get(skip..).unwrap_or(prompt.as_slice()).to_vec();
            prefill_jobs.push(ForwardJob {
                id: req.id,
                state: SeqState {
                    cache,
                    generated: Vec::new(),
                    next_input: 0,
                },
                prompt: Some(forward),
                wall_ns: 0,
            });
        }
        // One chunk per request: every worker shares `&self.model` read-only
        // and owns its job's cache exclusively, so the first tokens match
        // the sequential loop bit-for-bit at any pool width; a panicking
        // forward fails only its own request (terminalized below).
        let prefill_failed = self.run_forwards(&mut prefill_jobs);
        let mut prefilled_ok: Vec<usize> = Vec::new();
        for (idx, job) in prefill_jobs.into_iter().enumerate() {
            if let Some(reason) = prefill_failed.reason_for(idx) {
                self.terminalize(
                    job.id,
                    Terminal::Failed {
                        reason: format!("prefill worker panic: {reason}"),
                    },
                );
                continue;
            }
            *self.prefill_wall.entry(job.id).or_insert(0) += job.wall_ns;
            self.states.insert(job.id, job.state);
            prefilled_ok.push(job.id);
        }
        if self.prefix.is_some() {
            for id in prefilled_ok {
                let flavor = prefill_flavor.get(&id).copied().unwrap_or(FLAVOR_NORMAL);
                self.cache_completed_prefill(id, flavor);
            }
        }

        // Injected forward fault: kill one in-flight sequence, surfacing a
        // typed failure instead of poisoning the batch.
        if let Some(slot) = self.fault.forward_fault(self.clock) {
            if let Some(victim) = self.fault_victim(slot) {
                tel.counter_add(names::ENGINE_FAULTS, 1);
                self.terminalize(
                    victim,
                    Terminal::Failed {
                        reason: format!("injected forward fault at step {}", self.clock),
                    },
                );
            }
        }

        // Injected spurious timeout: one in-flight request's watchdog trips
        // even though its real step budget had not elapsed. The victim
        // terminalizes `DeadlineExceeded` with whatever tokens it had — the
        // retryable-timeout shape the gateway's retry policy absorbs.
        if let Some(slot) = self.fault.timeout_fault(self.clock) {
            if let Some(victim) = self.fault_victim(slot) {
                tel.counter_add(names::ENGINE_FAULTS, 1);
                self.terminalize(victim, Terminal::DeadlineExceeded);
            }
        }

        // Injected client cancel: the caller of one in-flight request hangs
        // up. Unlike a timeout this must never be retried upstream.
        if let Some(slot) = self.fault.cancel_fault(self.clock) {
            if let Some(victim) = self.fault_victim(slot) {
                tel.counter_add(names::ENGINE_FAULTS, 1);
                self.terminalize(victim, Terminal::Cancelled);
            }
        }

        // Cache-on: guarantee decode headroom before the scheduler commits
        // this step. Every decoding sequence may need one fresh block, and
        // blocks held only by the cache must yield rather than stall (or
        // preempt) live work.
        if self.prefix.is_some() {
            while self.batcher.allocator().free_blocks() < self.batcher.decoding() {
                if self.evict_one_cached().is_none() {
                    break;
                }
            }
        }

        // Decode phase: let the scheduler commit its block accounting first,
        // then run the model for exactly the sequences it advanced. (A
        // sequence can advance even when the pool looked full beforehand —
        // another sequence finishing in the same step frees its blocks — so
        // predicting the advanced set from a pre-step snapshot drops tokens.)
        let events = self.batcher.step_decode();
        let advanced = self.batcher.last_advanced_ids().to_vec();
        let mut decode_jobs: Vec<ForwardJob> = Vec::new();
        for id in &advanced {
            let Some(mut state) = self.states.remove(id) else {
                debug_assert!(false, "decoding sequence {id} without state");
                continue;
            };
            // The token chosen last iteration becomes output + next input.
            state.generated.push(state.next_input);
            if let Some(stats) = self.meta.get_mut(id) {
                stats.first_token_step.get_or_insert(self.clock);
            }
            decode_jobs.push(ForwardJob {
                id: *id,
                state,
                prompt: None,
                wall_ns: 0,
            });
        }
        // Same disjoint-ownership argument as prefill: each decode forward
        // touches only its own job, so the token stream is identical for any
        // pool width; a panic poisons only its own sequence.
        let decode_failed = self.run_forwards(&mut decode_jobs);
        let mut poisoned: Vec<(usize, String)> = Vec::new();
        for (idx, job) in decode_jobs.into_iter().enumerate() {
            if let Some(reason) = decode_failed.reason_for(idx) {
                poisoned.push((job.id, reason.to_string()));
            }
            self.states.insert(job.id, job.state);
        }
        if !advanced.is_empty() {
            self.decode_steps += 1;
        }
        for event in events {
            match event {
                BatchEvent::Finished(req) => {
                    let tokens = self
                        .states
                        .remove(&req.id)
                        .map(|s| s.generated)
                        .unwrap_or_default();
                    self.prompts.remove(&req.id);
                    let mut stats = self.meta.remove(&req.id).unwrap_or_default();
                    stats.finished_step = Some(self.clock);
                    tel.counter_add(names::ENGINE_TERMINAL_COMPLETED, 1);
                    if let Some(ttft) = stats.ttft_steps() {
                        tel.record(names::ENGINE_TTFT_STEPS, ttft as u64);
                    }
                    if let Some(tpot) = stats.tpot_millisteps(tokens.len()) {
                        tel.record(names::ENGINE_TPOT_MILLISTEPS, tpot);
                    }
                    if stats.prefix_tokens > 0 {
                        if let Some(ttft) = stats.ttft_steps() {
                            tel.record(names::PREFIX_HIT_TTFT_STEPS, ttft as u64);
                        }
                    }
                    self.completions.push(Completion {
                        id: req.id,
                        tokens: tokens.clone(),
                    });
                    self.outcomes.push(Outcome {
                        id: req.id,
                        terminal: Terminal::Completed,
                        tokens,
                        stats,
                    });
                }
                BatchEvent::Preempted(req) => {
                    // Recompute preemption: drop the state; the request is
                    // back in the queue and will prefill again from its
                    // stored prompt.
                    self.states.remove(&req.id);
                    tel.counter_add(names::ENGINE_PREEMPTIONS, 1);
                    if let Some(stats) = self.meta.get_mut(&req.id) {
                        stats.preemptions += 1;
                    }
                }
                BatchEvent::Admitted(_) => {}
            }
        }
        // A sequence whose decode forward panicked fails — unless the token
        // pushed this step already finished it, in which case the lost
        // logits would have been discarded anyway and the completion stands.
        for (id, reason) in poisoned {
            if self.meta.contains_key(&id) {
                self.terminalize(
                    id,
                    Terminal::Failed {
                        reason: format!("decode worker panic: {reason}"),
                    },
                );
            }
        }
        // Cache-cap enforcement runs once per step as well as at insert
        // time: blocks shared with a live donor are unevictable when
        // inserted, and only fall to refcount 1 (cache-only) after the
        // donor finishes — which may be this step's Finished events.
        if let Some(cap) = self.prefix.as_ref().and_then(|p| p.config.max_cached_blocks) {
            while self.prefix.as_ref().is_some_and(|p| p.index.len() > cap) {
                if self.evict_one_cached().is_none() {
                    break;
                }
            }
        }

        // Prefix-cache telemetry: per-step counter deltas plus the shared-
        // block gauge (the allocator owns the copy-on-write fork total).
        if let Some(prefix) = self.prefix.as_mut() {
            let alloc = self.batcher.allocator();
            let totals = PrefixCounters {
                cow_forks: alloc.cow_forks() as u64,
                ..prefix.totals
            };
            tel.counter_add(names::PREFIX_HITS, totals.hits - prefix.reported.hits);
            tel.counter_add(names::PREFIX_MISSES, totals.misses - prefix.reported.misses);
            tel.counter_add(
                names::PREFIX_EVICTIONS,
                totals.evictions - prefix.reported.evictions,
            );
            tel.counter_add(
                names::PREFIX_COW_FORKS,
                totals.cow_forks - prefix.reported.cow_forks,
            );
            tel.gauge_set(names::PREFIX_SHARED_BLOCKS, alloc.shared_blocks() as i64);
            prefix.reported = totals;
        }
        self.batcher.disarm_alloc_fault();
        true
    }

    /// Cache-on admission: for each head-of-queue request, predict its
    /// pressure flavor, look up the longest cached prefix of its prompt,
    /// pin the matched blocks, and admit it seeded with the shared run —
    /// evicting cold cached runs when the pool is short. Stops at the first
    /// request that cannot be admitted (FCFS head-of-line, exactly like the
    /// cache-off path).
    fn admit_with_cache(&mut self) {
        while let Some(head) = self.batcher.queue_head().copied() {
            if self.batcher.allocator().fault_armed() {
                break;
            }
            let degraded = self.predict_degraded(&head);
            let flavor = if degraded { FLAVOR_DEGRADED } else { FLAVOR_NORMAL };
            let tick = self.clock as u64;
            let outcome = {
                let (prefix_slot, prompts) = (&mut self.prefix, &self.prompts);
                let Some(prefix) = prefix_slot.as_mut() else {
                    return;
                };
                match prompts.get(&head.id) {
                    // Cap at `prompt_len - 1`: at least one prompt token
                    // must be forwarded to produce the first decode logits.
                    Some(prompt) => prefix.index.match_prefix(
                        prompt,
                        flavor,
                        head.prefill_tokens.saturating_sub(1),
                        tick,
                    ),
                    None => MatchOutcome::default(),
                }
            };
            // Pin the planned blocks so the eviction loop below can never
            // free part of the plan we are about to attach.
            let alloc = self.batcher.allocator_mut();
            for &block in &outcome.blocks {
                alloc.retain_block(block);
            }
            let shared = if outcome.tokens > 0 && outcome.snapshot.is_some() {
                SharedPrefix {
                    blocks: outcome.blocks.clone(),
                    tokens: outcome.tokens,
                }
            } else {
                SharedPrefix::default()
            };
            let mut admitted = None;
            loop {
                match self.batcher.try_admit_head(&shared) {
                    AdmitOutcome::Admitted(req) => {
                        admitted = Some(req);
                        break;
                    }
                    AdmitOutcome::NeedBlocks { .. } => {
                        if self.evict_one_cached().is_none() {
                            break;
                        }
                    }
                    AdmitOutcome::Blocked => break,
                }
            }
            let alloc = self.batcher.allocator_mut();
            for &block in &outcome.blocks {
                alloc.release_block(block);
            }
            let Some(req) = admitted else {
                break;
            };
            let hit = !shared.is_empty();
            if let Some(prefix) = self.prefix.as_mut() {
                if hit {
                    prefix.totals.hits += 1;
                } else {
                    prefix.totals.misses += 1;
                }
                prefix.planned.insert(
                    req.id,
                    PlannedAdmission {
                        flavor,
                        tokens: shared.tokens,
                        snapshot: outcome.snapshot,
                    },
                );
            }
            if let Some(stats) = self.meta.get_mut(&req.id) {
                stats.admitted_step.get_or_insert(self.clock);
            }
        }
    }

    /// Indexes a just-completed prefill into the prefix cache: freezes the
    /// sequence's KV state as a snapshot, shares its full prompt blocks
    /// with the radix index, and copy-forks the partial tail so the
    /// sequence's own tail stays writable. Enforces the configured cache
    /// cap afterwards.
    fn cache_completed_prefill(&mut self, id: usize, flavor: Flavor) {
        let tick = self.clock as u64;
        let Some(prompt) = self.prompts.get(&id) else {
            return;
        };
        let Some(state) = self.states.get(&id) else {
            return;
        };
        let snapshot = Arc::new(Snapshot::new(state.cache.clone_box(), prompt.len()));
        let (prefix_slot, batcher) = (&mut self.prefix, &mut self.batcher);
        let Some(prefix) = prefix_slot.as_mut() else {
            return;
        };
        let alloc = batcher.allocator_mut();
        let prompt_blocks = alloc.blocks_for(prompt.len());
        let Some(blocks) = alloc
            .table(id)
            .and_then(|t| t.blocks().get(..prompt_blocks))
            .map(<[usize]>::to_vec)
        else {
            debug_assert!(false, "prefilled sequence {id} has no block table");
            return;
        };
        let report = prefix.index.insert(
            prompt,
            &blocks,
            flavor,
            snapshot,
            tick,
            &mut |src, fill| alloc.fork_copy(src, fill).ok(),
        );
        for &block in &report.newly_shared {
            let retained = alloc.retain_block(block);
            debug_assert!(retained, "cache retained an unallocated block");
        }
        if report.new_nodes > 0 {
            prefix.totals.insertions += 1;
        }
        if let Some(cap) = prefix.config.max_cached_blocks {
            while prefix.index.len() > cap {
                let Some(block) = prefix.index.evict_lru(&|b| alloc.refcount(b) == 1) else {
                    break;
                };
                alloc.release_block(block);
                prefix.totals.evictions += 1;
            }
        }
    }

    /// Evicts the least-recently-used cache-only block (allocator refcount
    /// 1: no live sequence maps it) and frees it, returning the block id.
    /// `None` when the cache holds nothing evictable.
    fn evict_one_cached(&mut self) -> Option<usize> {
        let (prefix_slot, batcher) = (&mut self.prefix, &mut self.batcher);
        let prefix = prefix_slot.as_mut()?;
        let alloc = batcher.allocator_mut();
        let block = prefix.index.evict_lru(&|b| alloc.refcount(b) == 1)?;
        alloc.release_block(block);
        prefix.totals.evictions += 1;
        Some(block)
    }

    /// Counts cached blocks no live sequence maps (allocator refcount 1) —
    /// pool headroom the cache surrenders on demand. Pressure prediction
    /// subtracts it so a warm cache does not read as load.
    fn reclaimable_blocks(&self) -> usize {
        let Some(prefix) = self.prefix.as_ref() else {
            return 0;
        };
        let alloc = self.batcher.allocator();
        prefix
            .index
            .blocks()
            .iter()
            .filter(|&&b| alloc.refcount(b) == 1)
            .count()
    }

    /// Predicts whether admitting `head` should hand it the degraded KV
    /// cache. The cache-on path decides per request *before* its prefix
    /// lookup so the lookup queries the matching flavor.
    fn predict_degraded(&self, head: &Request) -> bool {
        if self.degraded_cache.is_none() {
            return false;
        }
        let alloc = self.batcher.allocator();
        let total = alloc.total_blocks().max(1);
        let projected = alloc.used_blocks() + alloc.blocks_for(head.prefill_tokens + 1);
        let load = projected.saturating_sub(self.reclaimable_blocks());
        let util = load as f64 / total as f64;
        util >= self.policy.degrade_kv_at
            || self
                .policy
                .degrade_queue_depth
                .is_some_and(|d| self.batcher.queued().saturating_sub(1) >= d)
    }

    /// Resolves an injected fault's victim: the prefilled in-flight request
    /// in batch slot `slot % live_count`, or `None` when nothing is live.
    fn fault_victim(&self, slot: usize) -> Option<usize> {
        let live: Vec<usize> = self
            .batcher
            .active()
            .iter()
            .filter(|s| s.prefilled)
            .map(|s| s.request.id)
            .collect();
        live.get(slot % live.len().max(1)).copied()
    }

    /// Runs every job's model forward on the engine pool and picks its next
    /// token by argmax over the final logits row. Chunk size 1 means the
    /// pool's failed-chunk indices are exactly job indices, so a panic in
    /// one forward is attributable to — and fails — a single request.
    fn run_forwards(&self, jobs: &mut [ForwardJob]) -> PoolFailure {
        let model = &self.model;
        match self.pool.par_chunks_mut(jobs, 1, |_, chunk| {
            let Some(job) = chunk.first_mut() else { return };
            // lint: allow(time-entropy) — per-job wall clock feeds kernel telemetry and the prefill-wall report only; scheduling and token choice never read it
            let start = Instant::now();
            let logits = match &job.prompt {
                Some(prompt) => model.forward(prompt, job.state.cache.as_mut()),
                None => model.forward(&[job.state.next_input], job.state.cache.as_mut()),
            };
            let last = logits.rows().saturating_sub(1);
            job.state.next_input = cast::usize_to_u16_saturating(ops::argmax(logits.row(last)));
            job.wall_ns = start.elapsed().as_nanos() as u64;
        }) {
            Ok(()) => PoolFailure {
                failed: Vec::new(),
                message: String::new(),
            },
            Err(PoolError::WorkerPanic {
                failed_chunks,
                message,
            }) => PoolFailure {
                failed: failed_chunks,
                message,
            },
        }
    }

    /// Runs until every submitted request reaches a terminal state.
    ///
    /// Progress is guaranteed for validated admissions; as a last line of
    /// defense a livelock circuit breaker fails all in-flight requests
    /// (typed `Failed`, blocks released) instead of spinning forever.
    pub fn run_to_completion(&mut self) -> &[Completion] {
        let mut quiet = 0usize;
        while !self.batcher.is_idle() {
            let before = self.progress_mark();
            self.step();
            if self.progress_mark() == before {
                quiet += 1;
                if quiet > Self::STALL_LIMIT {
                    // BTreeMap keys iterate in ascending id order already.
                    let stuck: Vec<usize> = self.meta.keys().copied().collect();
                    for id in stuck {
                        self.terminalize(
                            id,
                            Terminal::Failed {
                                reason: "livelock circuit breaker".to_string(),
                            },
                        );
                    }
                }
            } else {
                quiet = 0;
            }
        }
        &self.completions
    }

    fn progress_mark(&self) -> usize {
        self.outcomes.len() + self.decode_steps + self.batcher.preemptions()
    }

    /// Completions so far (submission order not guaranteed).
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Terminal records so far, in terminalization order — exactly one per
    /// submitted id once the engine is idle.
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// The terminal record of `id`, if it has reached one.
    pub fn outcome_of(&self, id: usize) -> Option<&Outcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// Decode iterations executed.
    pub fn decode_steps(&self) -> usize {
        self.decode_steps
    }

    /// Serving iterations executed (admission + decode).
    pub fn steps(&self) -> usize {
        self.clock
    }

    /// Admissions that received the degraded KV cache.
    pub fn degraded_admissions(&self) -> usize {
        self.degraded_admissions
    }

    /// Submissions rejected with a typed reason.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The underlying batcher (for memory/queue introspection).
    pub fn batcher(&self) -> &ContinuousBatcher {
        &self.batcher
    }

    /// Point-in-time prefix-cache statistics (`None` when the cache is
    /// disabled).
    pub fn prefix_stats(&self) -> Option<PrefixCacheStats> {
        let prefix = self.prefix.as_ref()?;
        let alloc = self.batcher.allocator();
        Some(PrefixCacheStats {
            hits: prefix.totals.hits,
            misses: prefix.totals.misses,
            insertions: prefix.totals.insertions,
            evictions: prefix.totals.evictions,
            cow_forks: alloc.cow_forks() as u64,
            cached_blocks: prefix.index.len(),
            shared_blocks: alloc.shared_blocks(),
        })
    }

    /// Drops every cached prefix run, releasing the cache's block
    /// references (blocks still mapped by live sequences survive until
    /// those sequences release them). Returns the number of cache
    /// references dropped. No-op when the cache is disabled.
    pub fn flush_prefix_cache(&mut self) -> usize {
        let (prefix_slot, batcher) = (&mut self.prefix, &mut self.batcher);
        let Some(prefix) = prefix_slot.as_mut() else {
            return 0;
        };
        let alloc = batcher.allocator_mut();
        let blocks = prefix.index.clear();
        for &block in &blocks {
            alloc.release_block(block);
        }
        prefix.totals.evictions += blocks.len() as u64;
        blocks.len()
    }

    /// Accumulated wall time of `id`'s prefill forwards, in nanoseconds
    /// (recomputed prefills after a preemption add up). `None` before the
    /// first prefill. Wall time is measurement only — it never feeds back
    /// into scheduling, so token streams stay deterministic.
    pub fn prefill_wall_ns(&self, id: usize) -> Option<u64> {
        self.prefill_wall.get(&id).copied()
    }

    /// The telemetry instance this engine records into (the process global
    /// unless [`Self::with_telemetry`] installed an owned one).
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::kv::Fp32KvCache;
    use atom_nn::{DenseLinear, ModelConfig};

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            dim: 32,
            layers: 1,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 48,
            ..ModelConfig::default()
        }
    }

    fn tiny_engine(max_batch: usize, pool: usize) -> CpuEngine<DenseLinear> {
        let config = tiny_config();
        let model = LlamaModel::random_init(config, 3);
        CpuEngine::new(
            model,
            Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
            max_batch,
            pool,
        )
        .expect("valid config")
    }

    #[test]
    fn serves_all_requests() {
        let mut e = tiny_engine(2, 1024);
        let a = e.submit(vec![1, 2, 3], 4).unwrap();
        let b = e.submit(vec![4, 5], 3).unwrap();
        let c = e.submit(vec![6], 2).unwrap();
        let done = e.run_to_completion().to_vec();
        assert_eq!(done.len(), 3);
        let by_id = |id| done.iter().find(|c| c.id == id).unwrap();
        assert_eq!(by_id(a).tokens.len(), 4);
        assert_eq!(by_id(b).tokens.len(), 3);
        assert_eq!(by_id(c).tokens.len(), 2);
        // Every submission has exactly one terminal record, all Completed.
        assert_eq!(e.outcomes().len(), 3);
        assert!(e.outcomes().iter().all(|o| o.terminal.is_completed()));
    }

    #[test]
    fn batched_serving_matches_solo_generation() {
        // Continuous batching must not change each request's output.
        let mut solo = tiny_engine(1, 1024);
        solo.submit(vec![10, 20, 30], 5).unwrap();
        let solo_out = solo.run_to_completion()[0].tokens.clone();

        let mut batched = tiny_engine(3, 1024);
        batched.submit(vec![10, 20, 30], 5).unwrap();
        batched.submit(vec![42, 17], 5).unwrap();
        batched.submit(vec![7, 8, 9, 10], 5).unwrap();
        let batched_all = batched.run_to_completion().to_vec();
        let same = batched_all.iter().find(|c| c.id == 0).unwrap();
        assert_eq!(same.tokens, solo_out);
    }

    #[test]
    fn token_streams_bit_identical_across_pool_widths() {
        // The determinism contract: pool width changes wall-clock only,
        // never a single generated token or terminal state.
        let run = |threads: usize| {
            let mut e = tiny_engine(3, 1024).with_pool(Pool::new(threads));
            e.submit(vec![10, 20, 30], 5).unwrap();
            e.submit(vec![42, 17], 7).unwrap();
            e.submit(vec![7, 8, 9, 10], 4).unwrap();
            let mut done = e.run_to_completion().to_vec();
            done.sort_by_key(|c| c.id);
            done.iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect::<Vec<_>>()
        };
        let solo = run(1);
        assert_eq!(solo, run(2));
        assert_eq!(solo, run(4));
        assert_eq!(solo, run(8));
    }

    /// A linear layer that panics whenever it sees an activation with a
    /// specific row count — rows == prompt length during prefill, rows == 1
    /// during decode — so one request's forward can be poisoned on demand.
    #[derive(Debug)]
    struct PanickyLinear {
        inner: DenseLinear,
        panic_rows: usize,
    }

    impl LinearLayer for PanickyLinear {
        fn forward(&self, x: &atom_tensor::Matrix) -> atom_tensor::Matrix {
            assert!(x.rows() != self.panic_rows, "injected layer panic");
            self.inner.forward(x)
        }
        fn in_features(&self) -> usize {
            self.inner.in_features()
        }
        fn out_features(&self) -> usize {
            self.inner.out_features()
        }
    }

    fn panicky_engine(panic_rows: usize, threads: usize) -> CpuEngine<PanickyLinear> {
        let config = tiny_config();
        let model = LlamaModel::random_init(config, 3).map_linears(|_, l| PanickyLinear {
            inner: l,
            panic_rows,
        });
        CpuEngine::new(
            model,
            Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
            4,
            1024,
        )
        .expect("valid config")
        .with_pool(Pool::new(threads))
    }

    #[test]
    fn prefill_worker_panic_fails_only_its_request() {
        // Prompts of length 2/3/4; layers panic at 3 rows, so exactly the
        // middle request's prefill dies. The process survives, the victim
        // terminalizes Failed, and the other requests complete untouched.
        let mut e = panicky_engine(3, 2);
        let ok_a = e.submit(vec![1, 2], 3).unwrap();
        let bad = e.submit(vec![1, 2, 3], 3).unwrap();
        let ok_b = e.submit(vec![1, 2, 3, 4], 3).unwrap();
        let done = e.run_to_completion().to_vec();
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| c.id == ok_a));
        assert!(done.iter().any(|c| c.id == ok_b));
        let outcome = e.outcomes().iter().find(|o| o.id == bad).expect("terminal");
        match &outcome.terminal {
            Terminal::Failed { reason } => {
                assert!(reason.contains("prefill worker panic"), "reason: {reason}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn decode_worker_panic_fails_request_with_typed_terminal() {
        // Layers panic at 1 row: prefill (2 rows) succeeds, the first
        // decode forward dies. The request fails typed, keeping the token
        // it had already committed.
        let mut e = panicky_engine(1, 2);
        let id = e.submit(vec![1, 2], 3).unwrap();
        e.run_to_completion();
        assert!(e.completions().is_empty());
        let outcome = e.outcomes().iter().find(|o| o.id == id).expect("terminal");
        match &outcome.terminal {
            Terminal::Failed { reason } => {
                assert!(reason.contains("decode worker panic"), "reason: {reason}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(outcome.tokens.len(), 1, "first token was already committed");
    }

    #[test]
    fn tight_memory_still_completes() {
        // Pool of 96 slots with three 40+-slot requests: they must be
        // served in waves rather than concurrently.
        let mut e = tiny_engine(4, 96);
        for _ in 0..3 {
            e.submit(vec![5; 40], 4).unwrap();
        }
        let done = e.run_to_completion().len();
        assert_eq!(done, 3);
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }

    #[test]
    fn generated_tokens_in_vocabulary() {
        let mut e = tiny_engine(2, 512);
        e.submit(vec![50, 60], 6).unwrap();
        for c in e.run_to_completion() {
            assert!(c.tokens.iter().all(|&t| (t as usize) < 96));
        }
    }

    #[test]
    fn bad_submissions_rejected_with_terminal_outcomes() {
        let mut e = tiny_engine(2, 64);
        assert_eq!(e.submit(vec![], 4), Err(RejectReason::EmptyPrompt));
        assert_eq!(e.submit(vec![1], 0), Err(RejectReason::ZeroDecodeTokens));
        // 64-slot pool: a request ending at 70 tokens can never be served.
        let err = e.submit(vec![2; 60], 10).unwrap_err();
        assert!(matches!(err, RejectReason::ExceedsKvPool { .. }));
        assert_eq!(e.rejected(), 3);
        assert_eq!(e.outcomes().len(), 3, "rejections leave terminal records");
        assert!(e
            .outcomes()
            .iter()
            .all(|o| matches!(o.terminal, Terminal::Rejected(_))));
        // The engine remains perfectly serviceable afterwards.
        e.submit(vec![1, 2], 3).unwrap();
        assert_eq!(e.run_to_completion().len(), 1);
    }

    #[test]
    fn zero_max_batch_is_invalid_config() {
        let config = tiny_config();
        let model = LlamaModel::random_init(config, 3);
        let err = CpuEngine::new(
            model,
            Box::new(move || {
                Box::new(Fp32KvCache::new(config.layers, config.kv_dim())) as Box<dyn KvStore>
            }),
            0,
            1024,
        )
        .expect_err("invalid");
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn cancel_queued_and_active_requests() {
        let mut e = tiny_engine(1, 1024);
        let a = e.submit(vec![1, 2, 3], 8).unwrap();
        let b = e.submit(vec![4, 5], 8).unwrap();
        e.step(); // a admitted + first token; b queued
        e.cancel(a).unwrap();
        e.cancel(b).unwrap();
        assert!(matches!(e.cancel(a), Err(ServeError::UnknownRequest(_))));
        assert!(matches!(e.cancel(99), Err(ServeError::UnknownRequest(_))));
        e.run_to_completion();
        assert_eq!(e.completions().len(), 0);
        assert_eq!(e.outcomes().len(), 2);
        assert!(e
            .outcomes()
            .iter()
            .all(|o| o.terminal == Terminal::Cancelled));
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }

    #[test]
    fn deadline_exceeded_is_terminal_with_partial_tokens() {
        let mut e = tiny_engine(1, 1024);
        let slow = e
            .submit_with(vec![1, 2, 3], SubmitOptions::new(50).with_deadline(5))
            .unwrap();
        let fast = e.submit(vec![4, 5], 3).unwrap();
        e.run_to_completion();
        let slow_out = e.outcome_of(slow).expect("terminal").clone();
        assert_eq!(slow_out.terminal, Terminal::DeadlineExceeded);
        assert!(
            slow_out.tokens.len() < 50,
            "deadline cut generation short ({} tokens)",
            slow_out.tokens.len()
        );
        assert_eq!(
            e.outcome_of(fast).unwrap().terminal,
            Terminal::Completed,
            "the fast request is unaffected"
        );
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }

    #[test]
    fn queue_shedding_under_policy() {
        let mut e = tiny_engine(1, 1024).with_policy(PressurePolicy {
            shed_queue_depth: Some(3),
            ..PressurePolicy::default()
        });
        e.submit(vec![1], 2).unwrap();
        e.submit(vec![2], 2).unwrap();
        e.submit(vec![3], 2).unwrap();
        let err = e.submit(vec![4], 2).unwrap_err();
        assert!(matches!(err, RejectReason::QueueFull { .. }));
        assert_eq!(e.run_to_completion().len(), 3);
        assert_eq!(e.outcomes().len(), 4);
    }

    #[test]
    fn per_request_stats_track_lifecycle() {
        let mut e = tiny_engine(1, 1024);
        let a = e.submit(vec![1, 2, 3], 2).unwrap();
        let b = e.submit(vec![4, 5], 2).unwrap();
        e.run_to_completion();
        let sa = e.outcome_of(a).unwrap().stats;
        let sb = e.outcome_of(b).unwrap().stats;
        assert_eq!(sa.queue_steps(), Some(1), "first request admitted at once");
        assert!(sb.queue_steps().unwrap() > sa.queue_steps().unwrap());
        assert!(sa.ttft_steps().unwrap() <= sb.ttft_steps().unwrap());
        assert_eq!(sa.preemptions, 0);
        assert!(!sa.degraded_kv);
    }

    #[test]
    fn injected_timeout_fault_is_deadline_terminal() {
        // No deadline was set, yet the watchdog "fires": the victim must
        // terminalize DeadlineExceeded with its partial tokens and leave
        // the rest of the batch untouched.
        let plan = FaultPlan::none().with_timeout_fault(3, 0);
        let mut e = tiny_engine(2, 1024).with_fault_plan(plan);
        let a = e.submit(vec![1, 2], 8).unwrap();
        let b = e.submit(vec![3, 4], 8).unwrap();
        e.run_to_completion();
        assert_eq!(e.outcomes().len(), 2);
        let timed_out = e
            .outcomes()
            .iter()
            .filter(|o| o.terminal == Terminal::DeadlineExceeded)
            .count();
        assert_eq!(timed_out, 1, "exactly one spurious timeout");
        let completed = e
            .outcomes()
            .iter()
            .filter(|o| o.terminal.is_completed())
            .count();
        assert_eq!(completed, 1, "the survivor completes normally");
        for id in [a, b] {
            let stats = e.outcome_of(id).unwrap().stats;
            assert!(stats.finished_step.is_some(), "terminal sets finished_step");
        }
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }

    #[test]
    fn injected_cancel_fault_is_cancelled_terminal() {
        let plan = FaultPlan::none().with_cancel_fault(2, 1);
        let mut e = tiny_engine(2, 1024).with_fault_plan(plan);
        e.submit(vec![1, 2], 6).unwrap();
        e.submit(vec![3, 4], 6).unwrap();
        e.run_to_completion();
        assert_eq!(e.outcomes().len(), 2);
        let cancelled = e
            .outcomes()
            .iter()
            .filter(|o| o.terminal == Terminal::Cancelled)
            .count();
        assert_eq!(cancelled, 1, "exactly one injected client cancel");
        assert_eq!(e.completions().len(), 1);
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }

    fn degrade_probe(degrade_kv_at: f64) -> bool {
        // 4-block pool (64 tokens). A 31-token prompt reserves 32 tokens =
        // 2 blocks at admission, so utilization measured after admit is
        // exactly 0.5 when the degrade check runs.
        let config = tiny_config();
        let model = LlamaModel::random_init(config, 3);
        let mut e = CpuEngine::new(
            model,
            Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
            2,
            64,
        )
        .expect("valid config")
        .with_degraded_cache(Box::new(move || {
            Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
        }))
        .with_policy(PressurePolicy {
            degrade_kv_at,
            ..PressurePolicy::default()
        });
        let id = e.submit(vec![7; 31], 2).unwrap();
        e.run_to_completion();
        e.outcome_of(id).unwrap().stats.degraded_kv
    }

    #[test]
    fn degrade_watermark_boundary_is_inclusive() {
        // Utilization == watermark degrades (the check is `>=`); a hair
        // above the observed utilization does not.
        assert!(degrade_probe(0.5), "admission exactly at the watermark degrades");
        assert!(!degrade_probe(0.501), "admission just below the watermark does not");
    }

    #[test]
    fn degrade_queue_depth_boundary_is_inclusive() {
        let run = |watermark: usize, backlog: usize| -> bool {
            let config = tiny_config();
            let model = LlamaModel::random_init(config, 3);
            let mut e = CpuEngine::new(
                model,
                Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
                1,
                1024,
            )
            .expect("valid config")
            .with_degraded_cache(Box::new(move || {
                Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
            }))
            .with_policy(PressurePolicy {
                degrade_queue_depth: Some(watermark),
                ..PressurePolicy::default()
            });
            let first = e.submit(vec![1, 2], 2).unwrap();
            for i in 0..backlog {
                e.submit(vec![3, 4 + i as u16], 2).unwrap();
            }
            e.run_to_completion();
            e.outcome_of(first).unwrap().stats.degraded_kv
        };
        // First request admits with `backlog` still queued: depth == the
        // watermark degrades, depth == watermark - 1 does not.
        assert!(run(2, 2), "queue depth exactly at the watermark degrades");
        assert!(!run(3, 2), "queue depth below the watermark does not");
    }

    #[test]
    fn shed_watermark_boundary_is_exact() {
        let mut e = tiny_engine(1, 1024).with_policy(PressurePolicy {
            shed_queue_depth: Some(2),
            ..PressurePolicy::default()
        });
        // Depth 0 and 1: accepted. The submission arriving at depth == 2
        // (the watermark) is the first one shed.
        e.submit(vec![1], 2).unwrap();
        e.submit(vec![2], 2).unwrap();
        assert_eq!(e.batcher().queued(), 2);
        let err = e.submit(vec![3], 2).unwrap_err();
        assert_eq!(err, RejectReason::QueueFull { depth: 2, limit: 2 });
        // The engine keeps serving; draining the queue re-opens admission.
        e.run_to_completion();
        e.submit(vec![4], 2).unwrap();
        assert_eq!(e.run_to_completion().len(), 3);
    }

    #[test]
    fn set_policy_updates_watermarks_at_runtime() {
        let mut e = tiny_engine(1, 1024);
        assert_eq!(e.policy().shed_queue_depth, None);
        e.set_policy(PressurePolicy {
            shed_queue_depth: Some(2),
            ..PressurePolicy::default()
        });
        e.submit(vec![1], 2).unwrap();
        e.submit(vec![2], 2).unwrap();
        let err = e.submit(vec![3], 2).unwrap_err();
        assert!(matches!(err, RejectReason::QueueFull { .. }));
        // Restoring the permissive policy re-opens the queue.
        e.set_policy(PressurePolicy::default());
        e.submit(vec![4], 2).unwrap();
        assert_eq!(e.run_to_completion().len(), 3);
    }

    fn prefix_engine(max_batch: usize, pool: usize) -> CpuEngine<DenseLinear> {
        tiny_engine(max_batch, pool).with_prefix_cache(PrefixConfig::default())
    }

    /// Shared-prefix workload: `n` prompts of `len` tokens sharing the
    /// first `shared` tokens, each decoding `decode` tokens.
    fn shared_prompts(n: usize, shared: usize, len: usize) -> Vec<Vec<u16>> {
        (0..n)
            .map(|i| {
                let mut p: Vec<u16> = (0..shared as u16).collect();
                p.extend((0..(len - shared) as u16).map(|t| 40 + t + i as u16));
                p
            })
            .collect()
    }

    #[test]
    fn cache_on_token_streams_match_cache_off() {
        let prompts = shared_prompts(6, 32, 40);
        let run = |cached: bool| {
            let mut e = if cached {
                prefix_engine(3, 1024)
            } else {
                tiny_engine(3, 1024)
            };
            for p in &prompts {
                e.submit(p.clone(), 5).unwrap();
            }
            let mut done = e.run_to_completion().to_vec();
            done.sort_by_key(|c| c.id);
            let stats = e.prefix_stats();
            (done, stats)
        };
        let (off, off_stats) = run(false);
        let (on, on_stats) = run(true);
        assert_eq!(off, on, "prefix cache must never change a token");
        assert!(off_stats.is_none());
        let stats = on_stats.expect("cache enabled");
        assert!(stats.hits >= 1, "later requests hit the shared prefix: {stats:?}");
        assert!(stats.insertions >= 1);
    }

    #[test]
    fn prefix_hits_skip_prefill_and_record_stats() {
        let mut e = prefix_engine(1, 1024);
        let prompts = shared_prompts(3, 32, 40);
        let ids: Vec<usize> = prompts
            .iter()
            .map(|p| e.submit(p.clone(), 3).unwrap())
            .collect();
        e.run_to_completion();
        let first = e.outcome_of(ids[0]).unwrap().stats;
        assert_eq!(first.prefix_tokens, 0, "the donor prefilled everything");
        for &id in &ids[1..] {
            let stats = e.outcome_of(id).unwrap().stats;
            assert_eq!(stats.prefix_tokens, 32, "followers reuse the shared 2 blocks");
        }
        let stats = e.prefix_stats().expect("cache enabled");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        // At idle no sequence is live: every cached block is refcount 1.
        assert_eq!(e.batcher().allocator().shared_blocks(), 0);
        e.batcher().allocator().leak_check().unwrap();
    }

    #[test]
    fn flush_prefix_cache_returns_pool_to_empty() {
        let mut e = prefix_engine(2, 1024);
        for p in shared_prompts(4, 32, 40) {
            e.submit(p, 3).unwrap();
        }
        e.run_to_completion();
        let alloc_used = e.batcher().allocator().used_blocks();
        assert!(alloc_used > 0, "cache retains blocks after drain");
        let freed = e.flush_prefix_cache();
        assert_eq!(freed, alloc_used, "flush releases exactly the cached blocks");
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
        assert_eq!(e.batcher().allocator().total_refs(), 0);
        e.batcher().allocator().leak_check().unwrap();
        assert_eq!(e.prefix_stats().unwrap().cached_blocks, 0);
    }

    #[test]
    fn cache_yields_blocks_under_memory_pressure() {
        // Pool of 6 blocks (96 slots). Each 40-token request needs 3
        // blocks; the cache fills up between waves and must be evicted to
        // admit later arrivals rather than deadlock or preempt forever.
        let mut e = prefix_engine(1, 96);
        let prompts = shared_prompts(4, 32, 40);
        for p in &prompts {
            e.submit(p.clone(), 3).unwrap();
        }
        let done = e.run_to_completion().len();
        assert_eq!(done, 4, "pressure evictions keep admissions flowing");
        let stats = e.prefix_stats().expect("cache enabled");
        assert!(stats.evictions > 0, "pool pressure forced evictions: {stats:?}");
        e.batcher().allocator().leak_check().unwrap();
    }

    #[test]
    fn cache_on_streams_identical_across_pool_widths() {
        let prompts = shared_prompts(5, 16, 24);
        let run = |threads: usize| {
            let mut e = prefix_engine(3, 1024).with_pool(Pool::new(threads));
            for p in &prompts {
                e.submit(p.clone(), 4).unwrap();
            }
            let mut done = e.run_to_completion().to_vec();
            done.sort_by_key(|c| c.id);
            done
        };
        let solo = run(1);
        assert_eq!(solo, run(2));
        assert_eq!(solo, run(8));
    }

    #[test]
    fn max_cached_blocks_cap_is_enforced() {
        let mut e = tiny_engine(2, 1024).with_prefix_cache(PrefixConfig {
            max_cached_blocks: Some(2),
        });
        // Disjoint prompts (within the 96-token vocabulary): each inserts
        // 2 blocks (one full chunk + a forked tail), so the cap must evict.
        for i in 0..4u16 {
            e.submit((0..20).map(|t| t + i * 24).collect(), 2).unwrap();
        }
        e.run_to_completion();
        let stats = e.prefix_stats().expect("cache enabled");
        assert!(stats.cached_blocks <= 2, "cap respected: {stats:?}");
        assert!(stats.evictions > 0);
        e.batcher().allocator().leak_check().unwrap();
    }

    #[test]
    fn prefill_wall_ns_is_recorded_per_request() {
        let mut e = prefix_engine(1, 1024);
        let id = e.submit(vec![1, 2, 3, 4], 2).unwrap();
        assert_eq!(e.prefill_wall_ns(id), None);
        e.run_to_completion();
        assert!(e.prefill_wall_ns(id).is_some());
    }

    #[test]
    fn injected_faults_surface_as_typed_terminals() {
        let plan = FaultPlan::none()
            .with_alloc_fault(2)
            .with_alloc_fault(3)
            .with_forward_fault(4, 0);
        let mut e = tiny_engine(2, 1024).with_fault_plan(plan);
        let ids: Vec<usize> = (0..3)
            .map(|i| e.submit(vec![i as u16 + 1, 7], 6).unwrap())
            .collect();
        e.run_to_completion();
        assert_eq!(e.outcomes().len(), 3, "exactly one terminal per request");
        let failed = e
            .outcomes()
            .iter()
            .filter(|o| matches!(o.terminal, Terminal::Failed { .. }))
            .count();
        assert_eq!(failed, 1, "the forward fault killed exactly one request");
        for id in ids {
            assert!(e.outcome_of(id).is_some());
        }
        assert_eq!(e.batcher().allocator().used_blocks(), 0);
    }
}
