//! Paged KV-cache block allocator (PagedAttention-style).
//!
//! GPU memory for the KV cache is carved into fixed-size blocks of
//! `block_size` token slots; each sequence owns a block table mapping its
//! logical positions to physical blocks. Paging eliminates the reservation
//! fragmentation of contiguous allocation and is what lets the serving
//! stack push batch sizes to the memory limit (paper §4.5 / Fig. 10c).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sequence identity within the allocator.
pub type SeqId = usize;

/// A sequence's block table: physical block ids in logical order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTable {
    blocks: Vec<usize>,
    tokens: usize,
}

impl BlockTable {
    /// Physical blocks backing this sequence.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// Number of tokens stored.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

/// Fixed-pool block allocator.
///
/// # Example
///
/// ```
/// use atom_serve::PagedAllocator;
///
/// let mut alloc = PagedAllocator::new(8, 16); // 8 blocks of 16 tokens
/// alloc.register(0);
/// assert!(alloc.grow(0, 20).is_ok()); // needs 2 blocks
/// assert_eq!(alloc.used_blocks(), 2);
/// alloc.release(0);
/// assert_eq!(alloc.used_blocks(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PagedAllocator {
    block_size: usize,
    free: Vec<usize>,
    tables: HashMap<SeqId, BlockTable>,
    total_blocks: usize,
    peak_used: usize,
    /// While armed, every growth that needs a fresh block fails (used by
    /// the deterministic fault injector to simulate transient memory
    /// stalls). Cleared explicitly by the caller.
    fault_armed: bool,
    /// Block allocations refused because a fault was armed.
    injected_failures: usize,
}

/// Error returned when the block pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks requested beyond availability.
    pub short_by: usize,
}

impl std::fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KV block pool exhausted (short by {} blocks)", self.short_by)
    }
}

impl std::error::Error for OutOfBlocks {}

impl PagedAllocator {
    /// Creates a pool of `total_blocks` blocks of `block_size` token slots.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(total_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PagedAllocator {
            block_size,
            free: (0..total_blocks).rev().collect(),
            tables: HashMap::new(),
            total_blocks,
            peak_used: 0,
            fault_armed: false,
            injected_failures: 0,
        }
    }

    /// Sizes a pool for a byte budget, given bytes per cached token.
    pub fn for_budget(budget_bytes: f64, bytes_per_token: f64, block_size: usize) -> Self {
        let tokens = (budget_bytes / bytes_per_token).max(0.0) as usize;
        Self::new(tokens / block_size, block_size)
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total pool size in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently allocated blocks.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks - self.free.len()
    }

    /// High-water mark of allocated blocks.
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Registers an empty sequence.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register(&mut self, seq: SeqId) {
        let prev = self.tables.insert(seq, BlockTable::default());
        assert!(prev.is_none(), "sequence {seq} already registered");
    }

    /// Whether a sequence is registered.
    pub fn contains(&self, seq: SeqId) -> bool {
        self.tables.contains_key(&seq)
    }

    /// The block table of a sequence.
    pub fn table(&self, seq: SeqId) -> Option<&BlockTable> {
        self.tables.get(&seq)
    }

    /// Blocks needed to store `tokens` tokens.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Arms the fault injector: until [`Self::disarm_fault`], every growth
    /// that needs a fresh block fails with [`OutOfBlocks`].
    pub fn arm_fault(&mut self) {
        self.fault_armed = true;
    }

    /// Clears an armed fault.
    pub fn disarm_fault(&mut self) {
        self.fault_armed = false;
    }

    /// Whether an injected allocation fault is currently armed.
    pub fn fault_armed(&self) -> bool {
        self.fault_armed
    }

    /// Block allocations refused by the fault injector so far.
    pub fn injected_failures(&self) -> usize {
        self.injected_failures
    }

    /// Whether growing `seq` by `new_tokens` would fit right now.
    pub fn can_grow(&self, seq: SeqId, new_tokens: usize) -> bool {
        let table = match self.tables.get(&seq) {
            Some(t) => t,
            None => return false,
        };
        let needed = self.blocks_for(table.tokens + new_tokens) - table.blocks.len();
        if needed > 0 && self.fault_armed {
            return false;
        }
        needed <= self.free.len()
    }

    /// Extends a sequence by `new_tokens`, allocating blocks as needed.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] (allocating nothing) when the pool cannot
    /// cover the growth.
    ///
    /// Growing an unregistered sequence is a caller bug: it trips a debug
    /// assertion under test and fails as an allocation error (allocating
    /// nothing) in release builds.
    pub fn grow(&mut self, seq: SeqId, new_tokens: usize) -> Result<(), OutOfBlocks> {
        let Some(table) = self.tables.get(&seq) else {
            debug_assert!(false, "sequence {seq} not registered");
            return Err(OutOfBlocks {
                short_by: self.blocks_for(new_tokens),
            });
        };
        let target_blocks = self.blocks_for(table.tokens + new_tokens);
        let needed = target_blocks.saturating_sub(table.blocks.len());
        if needed > 0 && self.fault_armed {
            self.injected_failures += 1;
            return Err(OutOfBlocks { short_by: needed });
        }
        if needed > self.free.len() {
            return Err(OutOfBlocks {
                short_by: needed - self.free.len(),
            });
        }
        // Detach the blocks first so the page table can absorb them with a
        // single mutable lookup. `pop()` order is preserved: the tail of the
        // free list lands in the table newest-first, exactly as before.
        let mut fresh = self.free.split_off(self.free.len() - needed);
        fresh.reverse();
        let Some(table) = self.tables.get_mut(&seq) else {
            // Unreachable: presence was checked above and nothing touched
            // the map since. Return the blocks rather than leak them.
            self.free.extend(fresh.into_iter().rev());
            debug_assert!(false, "sequence table vanished during grow");
            return Err(OutOfBlocks { short_by: needed });
        };
        table.blocks.extend(fresh);
        table.tokens += new_tokens;
        self.peak_used = self.peak_used.max(self.total_blocks - self.free.len());
        Ok(())
    }

    /// Releases a sequence, returning its blocks to the pool.
    ///
    /// Unknown ids are ignored (releasing twice is harmless).
    pub fn release(&mut self, seq: SeqId) {
        if let Some(table) = self.tables.remove(&seq) {
            self.free.extend(table.blocks);
        }
    }

    /// Fraction of allocated slots actually filled with tokens (internal
    /// fragmentation metric; PagedAttention keeps this near 1).
    pub fn utilization(&self) -> f64 {
        let used = self.used_blocks() * self.block_size;
        if used == 0 {
            return 1.0;
        }
        let tokens: usize = self.tables.values().map(|t| t.tokens).sum();
        tokens as f64 / used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_and_release_cycle() {
        let mut a = PagedAllocator::new(4, 8);
        a.register(1);
        a.grow(1, 8).unwrap(); // exactly one block
        assert_eq!(a.used_blocks(), 1);
        a.grow(1, 1).unwrap(); // spills into a second block
        assert_eq!(a.used_blocks(), 2);
        assert_eq!(a.table(1).unwrap().tokens(), 9);
        a.release(1);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.free_blocks(), 4);
    }

    #[test]
    fn exhaustion_is_atomic() {
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        a.register(2);
        a.grow(1, 4).unwrap();
        let err = a.grow(2, 9).unwrap_err(); // needs 3 blocks, 1 free
        assert_eq!(err.short_by, 2);
        // Nothing was allocated for seq 2.
        assert_eq!(a.table(2).unwrap().blocks().len(), 0);
        assert_eq!(a.used_blocks(), 1);
    }

    #[test]
    fn can_grow_predicts_grow() {
        let mut a = PagedAllocator::new(3, 4);
        a.register(7);
        assert!(a.can_grow(7, 12));
        assert!(!a.can_grow(7, 13));
        a.grow(7, 12).unwrap();
        assert!(a.can_grow(7, 0));
        assert!(!a.can_grow(7, 1));
        assert!(!a.can_grow(99, 1), "unregistered sequence cannot grow");
    }

    #[test]
    fn blocks_are_reused_after_release() {
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        a.grow(1, 8).unwrap();
        let blocks_1: Vec<usize> = a.table(1).unwrap().blocks().to_vec();
        a.release(1);
        a.register(2);
        a.grow(2, 8).unwrap();
        let mut blocks_2: Vec<usize> = a.table(2).unwrap().blocks().to_vec();
        blocks_2.sort_unstable();
        let mut sorted_1 = blocks_1;
        sorted_1.sort_unstable();
        assert_eq!(sorted_1, blocks_2);
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut a = PagedAllocator::new(4, 8);
        a.register(1);
        a.grow(1, 4).unwrap(); // half a block
        assert!((a.utilization() - 0.5).abs() < 1e-9);
        a.grow(1, 4).unwrap();
        assert!((a.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn for_budget_sizing() {
        // 1 MiB budget at 1 KiB per token, 16-token blocks = 64 blocks.
        let a = PagedAllocator::for_budget(1_048_576.0, 1024.0, 16);
        assert_eq!(a.total_blocks(), 64);
    }

    #[test]
    fn peak_tracking() {
        let mut a = PagedAllocator::new(4, 4);
        a.register(1);
        a.grow(1, 16).unwrap();
        a.release(1);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.peak_used(), 4);
    }

    #[test]
    fn armed_fault_refuses_fresh_blocks_only() {
        let mut a = PagedAllocator::new(4, 4);
        a.register(1);
        a.grow(1, 3).unwrap(); // one block, one slot spare
        a.arm_fault();
        assert!(a.can_grow(1, 1), "in-block growth survives the fault");
        a.grow(1, 1).unwrap();
        assert!(!a.can_grow(1, 1), "fresh-block growth is refused");
        assert!(a.grow(1, 1).is_err());
        assert_eq!(a.injected_failures(), 1);
        a.disarm_fault();
        a.grow(1, 1).unwrap();
        assert_eq!(a.used_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_register_panics() {
        let mut a = PagedAllocator::new(1, 1);
        a.register(0);
        a.register(0);
    }
}
