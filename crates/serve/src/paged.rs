//! Paged KV-cache block allocator (PagedAttention-style) with refcounted
//! copy-on-write block sharing.
//!
//! GPU memory for the KV cache is carved into fixed-size blocks of
//! `block_size` token slots; each sequence owns a block table mapping its
//! logical positions to physical blocks. Paging eliminates the reservation
//! fragmentation of contiguous allocation and is what lets the serving
//! stack push batch sizes to the memory limit (paper §4.5 / Fig. 10c).
//!
//! On top of plain paging, blocks carry a reference count so the radix
//! prefix cache (`atom-prefix`) can share one physical block run between
//! the cache and any number of sequences whose prompts start with the same
//! tokens (the vLLM prefix-caching lineage). The sharing rules are:
//!
//! - a block with `refs == 1` is **owned** (exactly one holder may write);
//! - a block with `refs > 1` is **shared** and immutable; a sequence that
//!   needs to append into a shared *partial* tail block first forks a
//!   private copy inside [`PagedAllocator::grow`] (copy-on-write), which
//!   replaces the tail in its table and drops one reference on the donor;
//! - a *full* shared block is never forked — appends go to fresh blocks,
//!   so full prefix blocks are shared at zero marginal cost;
//! - blocks return to the free list exactly when their count reaches zero,
//!   so conservation is `free + referenced == total` at every step.
//!
//! The allocator is pure bookkeeping: actual KV payloads live in the
//! engine's per-sequence `KvStore` boxes and in the prefix cache's
//! snapshots, which is what keeps shared blocks INT4-quantized when the
//! donor ran (or was degraded to) the quantized KV store.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sequence identity within the allocator.
pub type SeqId = usize;

/// A sequence's block table: physical block ids in logical order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTable {
    blocks: Vec<usize>,
    tokens: usize,
}

impl BlockTable {
    /// Physical blocks backing this sequence.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// Number of tokens stored.
    pub fn tokens(&self) -> usize {
        self.tokens
    }
}

/// A resolved prefix-cache match: the physical blocks covering the first
/// `tokens` tokens of a prompt, ready to be attached to a new sequence via
/// [`PagedAllocator::attach_shared`].
///
/// An empty plan (`tokens == 0`) means "no reuse" and admission proceeds
/// exactly as it would without a prefix cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedPrefix {
    /// Physical blocks in logical order; `blocks.len()` must equal
    /// `blocks_for(tokens)`.
    pub blocks: Vec<usize>,
    /// Prompt tokens covered by `blocks` (the last block may be partial).
    pub tokens: usize,
}

impl SharedPrefix {
    /// Whether this plan shares anything at all.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }
}

/// Fixed-pool block allocator.
///
/// # Example
///
/// ```
/// use atom_serve::PagedAllocator;
///
/// let mut alloc = PagedAllocator::new(8, 16); // 8 blocks of 16 tokens
/// alloc.register(0);
/// assert!(alloc.grow(0, 20).is_ok()); // needs 2 blocks
/// assert_eq!(alloc.used_blocks(), 2);
/// alloc.release(0);
/// assert_eq!(alloc.used_blocks(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PagedAllocator {
    block_size: usize,
    free: Vec<usize>,
    tables: BTreeMap<SeqId, BlockTable>,
    total_blocks: usize,
    /// Per-block reference count: 0 = free, 1 = owned, >1 = shared.
    refs: Vec<u32>,
    /// Token slots actually written in each block (≤ `block_size`);
    /// maintained for allocated blocks, zeroed when a block is freed.
    fill: Vec<usize>,
    /// Sum of `table.blocks.len()` over all registered sequences — the
    /// block count an exclusive (non-sharing) allocator would be holding.
    table_refs: usize,
    peak_used: usize,
    /// High-water mark of `table_refs` (exclusive-equivalent demand).
    peak_logical: usize,
    /// Copy-on-write forks performed (in `grow` and `fork_copy`).
    cow_forks: usize,
    /// While armed, every growth that needs a fresh block fails (used by
    /// the deterministic fault injector to simulate transient memory
    /// stalls). Cleared explicitly by the caller.
    fault_armed: bool,
    /// Block allocations refused because a fault was armed.
    injected_failures: usize,
}

/// Error returned when the block pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBlocks {
    /// Blocks requested beyond availability.
    pub short_by: usize,
}

impl std::fmt::Display for OutOfBlocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KV block pool exhausted (short by {} blocks)", self.short_by)
    }
}

impl std::error::Error for OutOfBlocks {}

impl PagedAllocator {
    /// Creates a pool of `total_blocks` blocks of `block_size` token slots.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(total_blocks: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PagedAllocator {
            block_size,
            free: (0..total_blocks).rev().collect(),
            tables: BTreeMap::new(),
            total_blocks,
            refs: vec![0; total_blocks],
            fill: vec![0; total_blocks],
            table_refs: 0,
            peak_used: 0,
            peak_logical: 0,
            cow_forks: 0,
            fault_armed: false,
            injected_failures: 0,
        }
    }

    /// Sizes a pool for a byte budget, given bytes per cached token.
    pub fn for_budget(budget_bytes: f64, bytes_per_token: f64, block_size: usize) -> Self {
        let tokens = (budget_bytes / bytes_per_token).max(0.0) as usize;
        Self::new(tokens / block_size, block_size)
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total pool size in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Currently allocated blocks.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks - self.free.len()
    }

    /// High-water mark of allocated blocks.
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// High-water mark of the *logical* (exclusive-equivalent) block
    /// demand: the sum of every sequence's table length, counting a block
    /// once per sequence that maps it. The gap between `peak_logical` and
    /// [`Self::peak_used`] is the physical footprint saved by sharing.
    pub fn peak_logical(&self) -> usize {
        self.peak_logical
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Reference count of a physical block (0 = free or out of range).
    pub fn refcount(&self, block: usize) -> u32 {
        self.refs.get(block).copied().unwrap_or(0)
    }

    /// Number of blocks currently shared (refcount > 1).
    pub fn shared_blocks(&self) -> usize {
        self.refs.iter().filter(|&&r| r > 1).count()
    }

    /// Sum of all block reference counts.
    pub fn total_refs(&self) -> u64 {
        self.refs.iter().map(|&r| u64::from(r)).sum()
    }

    /// Current sum of table lengths (references held by sequences; the
    /// remainder of [`Self::total_refs`] is held by the prefix cache and
    /// transient pins).
    pub fn table_refs(&self) -> usize {
        self.table_refs
    }

    /// Copy-on-write forks performed so far.
    pub fn cow_forks(&self) -> usize {
        self.cow_forks
    }

    /// Registers an empty sequence.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered.
    pub fn register(&mut self, seq: SeqId) {
        let prev = self.tables.insert(seq, BlockTable::default());
        assert!(prev.is_none(), "sequence {seq} already registered");
    }

    /// Whether a sequence is registered.
    pub fn contains(&self, seq: SeqId) -> bool {
        self.tables.contains_key(&seq)
    }

    /// The block table of a sequence.
    pub fn table(&self, seq: SeqId) -> Option<&BlockTable> {
        self.tables.get(&seq)
    }

    /// Blocks needed to store `tokens` tokens.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Arms the fault injector: until [`Self::disarm_fault`], every growth
    /// that needs a fresh block fails with [`OutOfBlocks`].
    pub fn arm_fault(&mut self) {
        self.fault_armed = true;
    }

    /// Clears an armed fault.
    pub fn disarm_fault(&mut self) {
        self.fault_armed = false;
    }

    /// Whether an injected allocation fault is currently armed.
    pub fn fault_armed(&self) -> bool {
        self.fault_armed
    }

    /// Block allocations refused by the fault injector so far.
    pub fn injected_failures(&self) -> usize {
        self.injected_failures
    }

    /// Fresh blocks `grow(seq, new_tokens)` would take from the free list,
    /// including a copy-on-write fork of a shared partial tail.
    fn growth_cost(&self, table: &BlockTable, new_tokens: usize) -> usize {
        let fresh =
            self.blocks_for(table.tokens + new_tokens).saturating_sub(table.blocks.len());
        fresh + usize::from(self.tail_fork_needed(table, new_tokens))
    }

    /// Whether appending `new_tokens` must first fork the tail block: the
    /// tail is partial (so the append writes into it) and shared (so the
    /// write would be visible to other holders).
    fn tail_fork_needed(&self, table: &BlockTable, new_tokens: usize) -> bool {
        new_tokens > 0
            && !table.tokens.is_multiple_of(self.block_size)
            && table
                .blocks
                .last()
                .is_some_and(|&b| self.refs.get(b).is_some_and(|&r| r > 1))
    }

    /// Fresh blocks an admission of `total_tokens` tokens would consume
    /// given an attached shared prefix (tail fork included). Used by the
    /// scheduler's watermark check before committing to an admission.
    pub fn fresh_blocks_for(&self, total_tokens: usize, shared: &SharedPrefix) -> usize {
        let target = self.blocks_for(total_tokens);
        let have = shared.blocks.len();
        let fork = total_tokens > shared.tokens && !shared.tokens.is_multiple_of(self.block_size);
        target.saturating_sub(have) + usize::from(fork)
    }

    /// Whether growing `seq` by `new_tokens` would fit right now.
    pub fn can_grow(&self, seq: SeqId, new_tokens: usize) -> bool {
        let Some(table) = self.tables.get(&seq) else {
            return false;
        };
        let needed = self.growth_cost(table, new_tokens);
        if needed > 0 && self.fault_armed {
            return false;
        }
        needed <= self.free.len()
    }

    /// Extends a sequence by `new_tokens`, allocating blocks as needed and
    /// copy-on-write-forking a shared partial tail before writing into it.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] (allocating nothing) when the pool cannot
    /// cover the growth.
    ///
    /// Growing an unregistered sequence is a caller bug: it trips a debug
    /// assertion under test and fails as an allocation error (allocating
    /// nothing) in release builds.
    pub fn grow(&mut self, seq: SeqId, new_tokens: usize) -> Result<(), OutOfBlocks> {
        let Some(table) = self.tables.get(&seq) else {
            debug_assert!(false, "sequence {seq} not registered");
            return Err(OutOfBlocks {
                short_by: self.blocks_for(new_tokens),
            });
        };
        let tail_fill = table.tokens % self.block_size;
        let old_tail = table.blocks.last().copied();
        let fork_needed = self.tail_fork_needed(table, new_tokens);
        let needed = self.growth_cost(table, new_tokens);
        if needed > 0 && self.fault_armed {
            self.injected_failures += 1;
            return Err(OutOfBlocks { short_by: needed });
        }
        if needed > self.free.len() {
            return Err(OutOfBlocks {
                short_by: needed - self.free.len(),
            });
        }
        // Detach the blocks first so the page table can absorb them with a
        // single mutable lookup. `pop()` order is preserved: the tail of the
        // free list lands in the table newest-first, exactly as before. When
        // a CoW fork is due, its replacement block is detached first.
        let mut detached = self.free.split_off(self.free.len() - needed);
        detached.reverse();
        let mut detached = detached.into_iter();
        let replacement = if fork_needed { detached.next() } else { None };
        let fresh: Vec<usize> = detached.collect();
        if let (Some(nb), Some(old)) = (replacement, old_tail) {
            if let Some(r) = self.refs.get_mut(nb) {
                *r = 1;
            }
            if let Some(f) = self.fill.get_mut(nb) {
                *f = tail_fill;
            }
            // The donor's count stays ≥ 1: fork_needed required refs > 1.
            if let Some(r) = self.refs.get_mut(old) {
                *r = r.saturating_sub(1);
            }
            self.cow_forks += 1;
        }
        for &b in &fresh {
            if let Some(r) = self.refs.get_mut(b) {
                *r = 1;
            }
        }
        // Fill accounting: top up the (possibly freshly forked) tail, then
        // spill block-sized runs into the fresh blocks in order.
        let mut remaining = new_tokens;
        if tail_fill != 0 && remaining > 0 {
            let add = remaining.min(self.block_size - tail_fill);
            if let Some(b) = replacement.or(old_tail) {
                if let Some(f) = self.fill.get_mut(b) {
                    *f = tail_fill + add;
                }
            }
            remaining -= add;
        }
        for &b in &fresh {
            let add = remaining.min(self.block_size);
            if let Some(f) = self.fill.get_mut(b) {
                *f = add;
            }
            remaining -= add;
        }
        let Some(table) = self.tables.get_mut(&seq) else {
            // Unreachable: presence was checked above and nothing touched
            // the map since. Undo the detachment rather than leak blocks.
            for b in replacement.iter().chain(fresh.iter()) {
                if let Some(r) = self.refs.get_mut(*b) {
                    *r = 0;
                }
                if let Some(f) = self.fill.get_mut(*b) {
                    *f = 0;
                }
            }
            if let (Some(_), Some(old)) = (replacement, old_tail) {
                if let Some(r) = self.refs.get_mut(old) {
                    *r += 1;
                }
                if let Some(f) = self.fill.get_mut(old) {
                    *f = tail_fill;
                }
                self.cow_forks -= 1;
            }
            let undo: Vec<usize> = replacement.into_iter().chain(fresh).collect();
            self.free.extend(undo.into_iter().rev());
            debug_assert!(false, "sequence table vanished during grow");
            return Err(OutOfBlocks { short_by: needed });
        };
        if let (Some(nb), Some(last)) = (replacement, table.blocks.last_mut()) {
            *last = nb;
        }
        self.table_refs += fresh.len();
        table.blocks.extend(fresh);
        table.tokens += new_tokens;
        self.peak_used = self.peak_used.max(self.total_blocks - self.free.len());
        self.peak_logical = self.peak_logical.max(self.table_refs);
        Ok(())
    }

    /// Seeds a freshly registered, still-empty sequence with a shared block
    /// run (a prefix-cache hit): every block gains one reference and the
    /// table starts at `shared.tokens` tokens. Returns `false` — attaching
    /// nothing — if the plan is inconsistent with the allocator state
    /// (caller bug; trips a debug assertion under test).
    pub fn attach_shared(&mut self, seq: SeqId, shared: &SharedPrefix) -> bool {
        let valid = shared.tokens > 0
            && shared.blocks.len() == self.blocks_for(shared.tokens)
            && self
                .tables
                .get(&seq)
                .is_some_and(|t| t.blocks.is_empty() && t.tokens == 0)
            && shared
                .blocks
                .iter()
                .all(|&b| self.refs.get(b).is_some_and(|&r| r > 0));
        if !valid {
            debug_assert!(false, "invalid shared-prefix attach for sequence {seq}");
            return false;
        }
        for &b in &shared.blocks {
            if let Some(r) = self.refs.get_mut(b) {
                *r += 1;
            }
        }
        if let Some(table) = self.tables.get_mut(&seq) {
            table.blocks = shared.blocks.clone();
            table.tokens = shared.tokens;
        }
        self.table_refs += shared.blocks.len();
        self.peak_logical = self.peak_logical.max(self.table_refs);
        true
    }

    /// Allocates a private copy of an allocated block holding `fill` token
    /// slots, owned by the caller (refcount 1) and mapped by no sequence.
    /// The prefix cache uses this to snapshot a donor's *partial* tail
    /// block at insertion time without freezing the donor's own tail.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBlocks`] when the pool is empty or a fault is armed.
    pub fn fork_copy(&mut self, src: usize, fill: usize) -> Result<usize, OutOfBlocks> {
        if self.refs.get(src).is_none_or(|&r| r == 0) {
            debug_assert!(false, "fork_copy of unallocated block {src}");
            return Err(OutOfBlocks { short_by: 1 });
        }
        if self.fault_armed {
            self.injected_failures += 1;
            return Err(OutOfBlocks { short_by: 1 });
        }
        let Some(nb) = self.free.pop() else {
            return Err(OutOfBlocks { short_by: 1 });
        };
        if let Some(r) = self.refs.get_mut(nb) {
            *r = 1;
        }
        if let Some(f) = self.fill.get_mut(nb) {
            *f = fill.min(self.block_size);
        }
        self.cow_forks += 1;
        self.peak_used = self.peak_used.max(self.total_blocks - self.free.len());
        Ok(nb)
    }

    /// Adds one reference to an allocated block (prefix-cache retention or
    /// a transient admission pin). Returns `false` — a caller bug that
    /// trips a debug assertion under test — if the block is free.
    pub fn retain_block(&mut self, block: usize) -> bool {
        match self.refs.get_mut(block) {
            Some(r) if *r > 0 => {
                *r += 1;
                true
            }
            _ => {
                debug_assert!(false, "retain of unallocated block {block}");
                false
            }
        }
    }

    /// Drops one reference from an allocated block, returning it to the
    /// free list when the count reaches zero. Releasing a free block is a
    /// caller bug (debug assertion under test, ignored in release builds).
    pub fn release_block(&mut self, block: usize) {
        match self.refs.get_mut(block) {
            Some(r) if *r > 0 => {
                *r -= 1;
                if *r == 0 {
                    if let Some(f) = self.fill.get_mut(block) {
                        *f = 0;
                    }
                    self.free.push(block);
                }
            }
            _ => debug_assert!(false, "release of unallocated block {block}"),
        }
    }

    /// Releases a sequence, dropping one reference per mapped block (in
    /// table order, so free-list order stays deterministic). Blocks still
    /// referenced elsewhere — by the prefix cache or by sequences sharing
    /// the prefix — stay allocated.
    ///
    /// Unknown ids are ignored (releasing twice is harmless).
    pub fn release(&mut self, seq: SeqId) {
        if let Some(table) = self.tables.remove(&seq) {
            self.table_refs -= table.blocks.len();
            for &b in &table.blocks {
                self.release_block(b);
            }
        }
    }

    /// Fraction of allocated slots actually filled with tokens (internal
    /// fragmentation metric; PagedAttention keeps this near 1). Each
    /// physical block counts once however many tables map it.
    pub fn utilization(&self) -> f64 {
        let used_slots = self.used_blocks() * self.block_size;
        if used_slots == 0 {
            return 1.0;
        }
        let tokens: usize = self
            .refs
            .iter()
            .zip(self.fill.iter())
            .filter(|(&r, _)| r > 0)
            .map(|(_, &f)| f)
            .sum();
        tokens as f64 / used_slots as f64
    }

    /// Verifies block conservation: `free + referenced == total`, free
    /// blocks carry no references, every table entry maps an allocated
    /// block, and no block is mapped by more tables than its refcount.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found (sequences are
    /// scanned in sorted id order, so the report is deterministic).
    pub fn leak_check(&self) -> Result<(), String> {
        let live = self.refs.iter().filter(|&&r| r > 0).count();
        if live + self.free.len() != self.total_blocks {
            return Err(format!(
                "conservation broken: {live} referenced + {} free != {} total",
                self.free.len(),
                self.total_blocks
            ));
        }
        for &b in &self.free {
            if self.refs.get(b).copied().unwrap_or(1) != 0 {
                return Err(format!("free-list block {b} still referenced"));
            }
        }
        let mut mapped = vec![0u32; self.total_blocks];
        let mut table_refs = 0usize;
        // BTreeMap keys iterate in ascending sequence order already.
        let seqs: Vec<&SeqId> = self.tables.keys().collect();
        for seq in seqs {
            let Some(table) = self.tables.get(seq) else {
                continue;
            };
            if table.blocks.len() != self.blocks_for(table.tokens) {
                return Err(format!(
                    "sequence {seq}: {} blocks for {} tokens",
                    table.blocks.len(),
                    table.tokens
                ));
            }
            table_refs += table.blocks.len();
            for &b in &table.blocks {
                if self.refs.get(b).copied().unwrap_or(0) == 0 {
                    return Err(format!("sequence {seq} maps free block {b}"));
                }
                if let Some(m) = mapped.get_mut(b) {
                    *m += 1;
                }
            }
        }
        if table_refs != self.table_refs {
            return Err(format!(
                "table_refs drift: counted {table_refs}, cached {}",
                self.table_refs
            ));
        }
        for (b, (&r, &m)) in self.refs.iter().zip(mapped.iter()).enumerate() {
            if m > r {
                return Err(format!("block {b} mapped by {m} tables but refcount is {r}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_and_release_cycle() {
        let mut a = PagedAllocator::new(4, 8);
        a.register(1);
        a.grow(1, 8).unwrap(); // exactly one block
        assert_eq!(a.used_blocks(), 1);
        a.grow(1, 1).unwrap(); // spills into a second block
        assert_eq!(a.used_blocks(), 2);
        assert_eq!(a.table(1).unwrap().tokens(), 9);
        a.release(1);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.free_blocks(), 4);
        a.leak_check().unwrap();
    }

    #[test]
    fn exhaustion_is_atomic() {
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        a.register(2);
        a.grow(1, 4).unwrap();
        let err = a.grow(2, 9).unwrap_err(); // needs 3 blocks, 1 free
        assert_eq!(err.short_by, 2);
        // Nothing was allocated for seq 2.
        assert_eq!(a.table(2).unwrap().blocks().len(), 0);
        assert_eq!(a.used_blocks(), 1);
    }

    #[test]
    fn can_grow_predicts_grow() {
        let mut a = PagedAllocator::new(3, 4);
        a.register(7);
        assert!(a.can_grow(7, 12));
        assert!(!a.can_grow(7, 13));
        a.grow(7, 12).unwrap();
        assert!(a.can_grow(7, 0));
        assert!(!a.can_grow(7, 1));
        assert!(!a.can_grow(99, 1), "unregistered sequence cannot grow");
    }

    #[test]
    fn blocks_are_reused_after_release() {
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        a.grow(1, 8).unwrap();
        let blocks_1: Vec<usize> = a.table(1).unwrap().blocks().to_vec();
        a.release(1);
        a.register(2);
        a.grow(2, 8).unwrap();
        let mut blocks_2: Vec<usize> = a.table(2).unwrap().blocks().to_vec();
        blocks_2.sort_unstable();
        let mut sorted_1 = blocks_1;
        sorted_1.sort_unstable();
        assert_eq!(sorted_1, blocks_2);
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut a = PagedAllocator::new(4, 8);
        a.register(1);
        a.grow(1, 4).unwrap(); // half a block
        assert!((a.utilization() - 0.5).abs() < 1e-9);
        a.grow(1, 4).unwrap();
        assert!((a.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn for_budget_sizing() {
        // 1 MiB budget at 1 KiB per token, 16-token blocks = 64 blocks.
        let a = PagedAllocator::for_budget(1_048_576.0, 1024.0, 16);
        assert_eq!(a.total_blocks(), 64);
    }

    #[test]
    fn peak_tracking() {
        let mut a = PagedAllocator::new(4, 4);
        a.register(1);
        a.grow(1, 16).unwrap();
        a.release(1);
        assert_eq!(a.used_blocks(), 0);
        assert_eq!(a.peak_used(), 4);
        assert_eq!(a.peak_logical(), 4);
    }

    #[test]
    fn armed_fault_refuses_fresh_blocks_only() {
        let mut a = PagedAllocator::new(4, 4);
        a.register(1);
        a.grow(1, 3).unwrap(); // one block, one slot spare
        a.arm_fault();
        assert!(a.can_grow(1, 1), "in-block growth survives the fault");
        a.grow(1, 1).unwrap();
        assert!(!a.can_grow(1, 1), "fresh-block growth is refused");
        assert!(a.grow(1, 1).is_err());
        assert_eq!(a.injected_failures(), 1);
        a.disarm_fault();
        a.grow(1, 1).unwrap();
        assert_eq!(a.used_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_register_panics() {
        let mut a = PagedAllocator::new(1, 1);
        a.register(0);
        a.register(0);
    }

    #[test]
    fn attach_shared_then_grow_forks_partial_tail() {
        let mut a = PagedAllocator::new(8, 8);
        a.register(1);
        a.grow(1, 20).unwrap(); // 3 blocks, tail holds 4 tokens
        let donor: Vec<usize> = a.table(1).unwrap().blocks().to_vec();
        let plan = SharedPrefix { blocks: donor.clone(), tokens: 20 };
        a.register(2);
        assert!(a.attach_shared(2, &plan));
        for &b in &donor {
            assert_eq!(a.refcount(b), 2);
        }
        assert_eq!(a.used_blocks(), 3, "attaching allocates nothing");
        assert_eq!(a.shared_blocks(), 3);
        // Consumer appends: the shared partial tail must be forked, plus one
        // fresh block for the spill (20 + 5 = 25 tokens -> 4 blocks).
        assert_eq!(a.fresh_blocks_for(25, &plan), 2);
        a.grow(2, 5).unwrap();
        assert_eq!(a.cow_forks(), 1);
        assert_eq!(a.used_blocks(), 5);
        let consumer: Vec<usize> = a.table(2).unwrap().blocks().to_vec();
        assert_eq!(consumer.len(), 4);
        assert_eq!(&consumer[..2], &donor[..2], "full blocks stay shared");
        assert_ne!(consumer[2], donor[2], "partial tail was forked");
        assert_eq!(a.refcount(donor[2]), 1, "donor got its tail back");
        a.leak_check().unwrap();
        // Releasing the donor keeps the still-shared full blocks allocated.
        a.release(1);
        assert_eq!(a.refcount(donor[0]), 1);
        assert_eq!(a.refcount(donor[2]), 0, "unshared tail was freed");
        a.release(2);
        assert_eq!(a.used_blocks(), 0);
        a.leak_check().unwrap();
    }

    #[test]
    fn block_aligned_prefix_shares_without_fork() {
        let mut a = PagedAllocator::new(8, 8);
        a.register(1);
        a.grow(1, 16).unwrap(); // exactly 2 full blocks
        let donor: Vec<usize> = a.table(1).unwrap().blocks().to_vec();
        let plan = SharedPrefix { blocks: donor.clone(), tokens: 16 };
        a.register(2);
        assert!(a.attach_shared(2, &plan));
        a.grow(2, 5).unwrap(); // spills straight into a fresh block
        assert_eq!(a.cow_forks(), 0);
        assert_eq!(a.used_blocks(), 3);
        a.leak_check().unwrap();
    }

    #[test]
    fn retain_and_release_block_cycle() {
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        a.grow(1, 4).unwrap();
        let b = a.table(1).unwrap().blocks()[0];
        assert!(a.retain_block(b));
        a.release(1);
        assert_eq!(a.used_blocks(), 1, "cache reference keeps the block");
        assert_eq!(a.refcount(b), 1);
        a.release_block(b);
        assert_eq!(a.used_blocks(), 0);
        a.leak_check().unwrap();
    }

    #[test]
    fn fork_copy_allocates_owned_block() {
        let mut a = PagedAllocator::new(2, 8);
        a.register(1);
        a.grow(1, 5).unwrap();
        let src = a.table(1).unwrap().blocks()[0];
        let copy = a.fork_copy(src, 5).unwrap();
        assert_ne!(copy, src);
        assert_eq!(a.refcount(copy), 1);
        assert_eq!(a.cow_forks(), 1);
        assert_eq!(a.used_blocks(), 2);
        // The copy belongs to no table, so utilization still counts it.
        assert!((a.utilization() - 10.0 / 16.0).abs() < 1e-9);
        a.release_block(copy);
        a.release(1);
        a.leak_check().unwrap();
    }

    #[test]
    fn fork_copy_respects_faults_and_exhaustion() {
        let mut a = PagedAllocator::new(1, 8);
        a.register(1);
        a.grow(1, 3).unwrap();
        let src = a.table(1).unwrap().blocks()[0];
        assert_eq!(a.fork_copy(src, 3), Err(OutOfBlocks { short_by: 1 }));
        a.release(1);
        a.register(2);
        a.arm_fault();
        a.grow(2, 3).unwrap_err();
        assert_eq!(a.injected_failures(), 1);
    }

    #[test]
    fn shared_utilization_counts_physical_blocks_once() {
        let mut a = PagedAllocator::new(4, 8);
        a.register(1);
        a.grow(1, 8).unwrap();
        let plan = SharedPrefix {
            blocks: a.table(1).unwrap().blocks().to_vec(),
            tokens: 8,
        };
        a.register(2);
        assert!(a.attach_shared(2, &plan));
        // One full physical block, two tables: utilization is still 1.0.
        assert!((a.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(a.table_refs(), 2);
        assert_eq!(a.peak_logical(), 2);
        assert_eq!(a.peak_used(), 1);
    }

    #[test]
    fn attach_shared_rejects_inconsistent_plans() {
        // Release builds refuse bad plans instead of corrupting counts;
        // debug builds would assert, so exercise the release-path contract
        // only where it cannot trip (index out of pool range is checked
        // before any mutation).
        let mut a = PagedAllocator::new(2, 4);
        a.register(1);
        let bad = SharedPrefix { blocks: vec![0], tokens: 4 };
        // Block 0 is free: the plan is invalid. (debug_assert fires under
        // `cargo test` only via std::panic::catch_unwind.)
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.attach_shared(1, &bad)
        }));
        // Err means the debug assertion tripped; nothing was mutated.
        if let Ok(attached) = result {
            assert!(!attached);
        }
        assert_eq!(a.used_blocks(), 0);
    }
}
