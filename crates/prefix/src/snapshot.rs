//! Immutable KV snapshots backing radix-tree nodes.

use atom_nn::KvStore;

/// A donor request's KV state at the end of its prefill, frozen for reuse.
///
/// The snapshot owns a deep copy of the donor's cache (taken via
/// [`KvStore::clone_box`]), so later truncation or the donor's own decode
/// steps can never disturb it. Replaying a hit clones the snapshot again
/// and truncates to the matched token count — bit-identical to a fresh
/// prefill of those tokens because both stores quantize per token row.
#[derive(Debug)]
pub struct Snapshot {
    kv: Box<dyn KvStore>,
    tokens: usize,
}

impl Snapshot {
    /// Freezes `kv` as a snapshot covering `tokens` prompt tokens.
    pub fn new(kv: Box<dyn KvStore>, tokens: usize) -> Self {
        Snapshot { kv, tokens }
    }

    /// Prompt tokens this snapshot covers.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Clones the snapshot's KV state cut to the first `tokens` positions.
    pub fn clone_prefix(&self, tokens: usize) -> Box<dyn KvStore> {
        let mut kv = self.kv.clone_box();
        if tokens < self.tokens {
            kv.truncate(tokens);
        }
        kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::Fp32KvCache;
    use atom_tensor::Matrix;

    #[test]
    fn clone_prefix_truncates_without_touching_the_original() {
        let mut kv = Fp32KvCache::new(1, 2);
        for t in 0..4 {
            let m = Matrix::full(1, 2, t as f32);
            kv.append(0, &m, &m);
        }
        let snap = Snapshot::new(Box::new(kv), 4);
        let cut = snap.clone_prefix(2);
        assert_eq!(cut.len(0), 2);
        assert_eq!(snap.clone_prefix(4).len(0), 4);
        assert_eq!(snap.clone_prefix(9).len(0), 4, "over-long cut is a no-op");
    }
}
