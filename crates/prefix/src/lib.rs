//! Radix-tree prefix cache over token streams (atom-prefix).
//!
//! Real fleets serve a small set of system prompts to millions of users, so
//! most prefill work re-derives KV state an earlier request already
//! produced. This crate indexes completed prefills in a radix tree keyed by
//! token content at KV-block granularity (the SGLang/vLLM prefix-caching
//! lineage): each tree node covers one physical KV block — a full
//! `block_size`-token chunk for interior nodes, or a shorter leaf for a
//! prompt's partial tail — and owns an [`Snapshot`] of the donor request's
//! KV state so a later request with the same prompt prefix can skip
//! recomputing it.
//!
//! The index is **pure bookkeeping over block ids**: reference counts and
//! the free list live in the serving crate's `PagedAllocator`, and KV
//! payloads live in snapshots ([`atom_nn::KvStore`] boxes — which stay
//! INT4-quantized when the donor ran the quantized store, so degraded
//! admissions hit the same cache). The contract with the caller:
//!
//! - every node holds exactly one cache reference on its block; callers
//!   retain blocks reported by [`radix::InsertReport::newly_shared`] and
//!   release the block returned by [`RadixIndex::evict_lru`];
//! - matching is all-or-nothing per node and capped at `prompt_len - 1`
//!   tokens by the engine, so a hit always leaves at least one token to
//!   forward (the model needs one logits row to emit the first token);
//! - snapshots are only ever *truncated* to a match point, never extended,
//!   and per-row quantization makes truncation bit-identical to a fresh
//!   short prefill — which is what keeps cache-on and cache-off token
//!   streams identical;
//! - all iteration orders (children, arena slots, free slots) are
//!   insertion-deterministic, preserving the engine's bit-identical-replay
//!   contract at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod radix;
pub mod snapshot;

pub use radix::{Flavor, InsertReport, MatchOutcome, RadixIndex, FLAVOR_DEGRADED, FLAVOR_NORMAL};
pub use snapshot::Snapshot;

/// Tuning knobs for the engine-side prefix cache runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixConfig {
    /// Soft cap on cached blocks: after each insertion the engine evicts
    /// least-recently-used unshared runs down to this bound. `None` lets
    /// the cache grow until admission or decode pressure evicts it.
    pub max_cached_blocks: Option<usize>,
}

/// Point-in-time prefix-cache statistics assembled by the serving engine
/// (index counters plus allocator sharing state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Admissions that attached a cached prefix.
    pub hits: u64,
    /// Admissions that found no usable prefix.
    pub misses: u64,
    /// Prompt insertions that created at least one new node.
    pub insertions: u64,
    /// Cached runs evicted (LRU or flush).
    pub evictions: u64,
    /// Copy-on-write forks performed by the allocator.
    pub cow_forks: u64,
    /// Nodes (= blocks) currently held by the index.
    pub cached_blocks: usize,
    /// Physical blocks currently referenced more than once.
    pub shared_blocks: usize,
}
