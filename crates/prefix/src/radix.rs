//! The radix (trie) index mapping token prefixes to cached KV block runs.
//!
//! Nodes live in a slab arena with an explicit free-slot list, children are
//! kept in insertion order, and eviction scans slots in index order — every
//! operation is deterministic given the operation sequence, which is part
//! of the serving engine's bit-identical-replay contract.

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache flavor tag: prefixes only match within a flavor, so a request
/// admitted with a degraded (INT4) KV store never replays a full-precision
/// snapshot and vice versa — flavor-blind matching would silently change
/// outputs between cache-on and cache-off runs.
pub type Flavor = u8;

/// Flavor tag for the engine's primary KV store.
pub const FLAVOR_NORMAL: Flavor = 0;
/// Flavor tag for pressure-degraded (quantized) KV admissions.
pub const FLAVOR_DEGRADED: Flavor = 1;

/// A resolved lookup: how many prompt tokens matched, the physical blocks
/// covering them (one per radix node on the match path), and the deepest
/// node's KV snapshot to replay them from.
#[derive(Debug, Clone, Default)]
pub struct MatchOutcome {
    /// Prompt tokens covered (0 = miss).
    pub tokens: usize,
    /// Physical block ids in logical order, `blocks_for(tokens)` of them.
    pub blocks: Vec<usize>,
    /// KV snapshot covering at least `tokens` positions (present iff
    /// `tokens > 0`).
    pub snapshot: Option<Arc<Snapshot>>,
}

/// What an insertion changed, and which follow-up block accounting the
/// caller owes the allocator.
#[derive(Debug, Default)]
pub struct InsertReport {
    /// Donor-table blocks now *also* referenced by a new cache node; the
    /// caller must add one allocator reference to each. (A forked tail
    /// block is absent here — `fork_tail` already produced it owned by the
    /// cache.)
    pub newly_shared: Vec<usize>,
    /// Nodes created (0 = the prompt was already fully cached).
    pub new_nodes: usize,
    /// The partial tail could not be forked (pool exhausted); the full
    /// blocks were still cached.
    pub tail_fork_failed: bool,
}

#[derive(Debug)]
struct Node {
    flavor: Flavor,
    /// Token content covered by this node: exactly `block_size` tokens for
    /// interior-capable nodes, fewer for partial-tail leaves.
    chunk: Vec<u16>,
    /// Physical KV block backing the chunk.
    block: usize,
    parent: Option<usize>,
    /// Child node ids in insertion order. Only full nodes ever gain
    /// children; partial nodes are always leaves.
    children: Vec<usize>,
    /// Deepest-prefill KV state that covers this node's path.
    snapshot: Arc<Snapshot>,
    /// Engine tick of the last match or insertion touching this node.
    last_used: u64,
    /// Monotonic creation stamp — the LRU tie-breaker.
    stamp: u64,
}

/// Deterministic radix index over token prefixes at KV-block granularity.
///
/// # Example
///
/// ```
/// use atom_prefix::{RadixIndex, Snapshot, FLAVOR_NORMAL};
/// use atom_nn::Fp32KvCache;
/// use std::sync::Arc;
///
/// let mut idx = RadixIndex::new(4);
/// let prompt: Vec<u16> = (0..10).collect();
/// let snap = Arc::new(Snapshot::new(Box::new(Fp32KvCache::new(1, 2)), 10));
/// // Blocks 5, 6, 7 back the prompt; the partial tail (tokens 8..10) is
/// // forked to block 9 by the callback.
/// let report = idx.insert(&prompt, &[5, 6, 7], FLAVOR_NORMAL, snap, 0, &mut |_src, _fill| Some(9));
/// assert_eq!(report.newly_shared, vec![5, 6]);
/// let hit = idx.match_prefix(&prompt, FLAVOR_NORMAL, prompt.len() - 1, 1);
/// assert_eq!(hit.tokens, 8); // the 2-token tail fits under the 9-token cap
/// ```
#[derive(Debug)]
pub struct RadixIndex {
    block_size: usize,
    slots: Vec<Option<Node>>,
    free_slots: Vec<usize>,
    /// Root children per flavor (BTreeMap for deterministic iteration).
    roots: BTreeMap<Flavor, Vec<usize>>,
    next_stamp: u64,
    node_count: usize,
}

impl RadixIndex {
    /// Creates an empty index at `block_size`-token granularity (must match
    /// the paged allocator's block size).
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        RadixIndex {
            block_size,
            slots: Vec::new(),
            free_slots: Vec::new(),
            roots: BTreeMap::new(),
            next_stamp: 0,
            node_count: 0,
        }
    }

    /// Token granularity of the index.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of cached nodes (== cached blocks: one block per node).
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// Whether the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Every cached block id, in arena-slot (deterministic) order.
    pub fn blocks(&self) -> Vec<usize> {
        self.slots.iter().flatten().map(|n| n.block).collect()
    }

    fn node(&self, id: usize) -> Option<&Node> {
        self.slots.get(id).and_then(|s| s.as_ref())
    }

    fn node_mut(&mut self, id: usize) -> Option<&mut Node> {
        self.slots.get_mut(id).and_then(|s| s.as_mut())
    }

    fn children_of(&self, parent: Option<usize>, flavor: Flavor) -> &[usize] {
        match parent {
            Some(id) => self.node(id).map(|n| n.children.as_slice()).unwrap_or(&[]),
            None => self.roots.get(&flavor).map(|v| v.as_slice()).unwrap_or(&[]),
        }
    }

    fn alloc_node(&mut self, node: Node) -> usize {
        let parent = node.parent;
        let flavor = node.flavor;
        let id = match self.free_slots.pop() {
            Some(slot) => {
                if let Some(s) = self.slots.get_mut(slot) {
                    *s = Some(node);
                }
                slot
            }
            None => {
                self.slots.push(Some(node));
                self.slots.len() - 1
            }
        };
        match parent {
            Some(p) => {
                if let Some(pn) = self.node_mut(p) {
                    pn.children.push(id);
                }
            }
            None => self.roots.entry(flavor).or_default().push(id),
        }
        self.node_count += 1;
        id
    }

    /// Finds the longest cached prefix of `prompt` within `flavor`, capped
    /// at `max_tokens` (the engine passes `prompt.len() - 1` so a hit never
    /// swallows the whole prompt). Matching is all-or-nothing per node: a
    /// node either covers its full chunk inside the cap or contributes
    /// nothing. Every node on the hit path has its recency bumped to
    /// `tick`.
    pub fn match_prefix(
        &mut self,
        prompt: &[u16],
        flavor: Flavor,
        max_tokens: usize,
        tick: u64,
    ) -> MatchOutcome {
        let mut matched = 0usize;
        let mut path: Vec<usize> = Vec::new();
        let mut kids: Vec<usize> = self.roots.get(&flavor).cloned().unwrap_or_default();
        loop {
            let rest = prompt.get(matched..).unwrap_or(&[]);
            if rest.is_empty() {
                break;
            }
            let budget = max_tokens.saturating_sub(matched);
            // One pass over the children: a full-chunk node matches at most
            // once (children are content-deduplicated) and wins outright;
            // otherwise the longest matching partial leaf wins.
            let mut best: Option<(usize, usize)> = None;
            for &id in &kids {
                let Some(node) = self.node(id) else { continue };
                let take = node.chunk.len();
                if take == 0 || take > budget || take > rest.len() {
                    continue;
                }
                if rest.get(..take) != Some(node.chunk.as_slice()) {
                    continue;
                }
                if take == self.block_size {
                    best = Some((id, take));
                    break;
                }
                if best.is_none_or(|(_, t)| take > t) {
                    best = Some((id, take));
                }
            }
            let Some((id, take)) = best else { break };
            matched += take;
            path.push(id);
            if take < self.block_size {
                break; // partial leaves have no children
            }
            kids = self.node(id).map(|n| n.children.clone()).unwrap_or_default();
        }
        let mut blocks = Vec::with_capacity(path.len());
        let mut snapshot = None;
        for &id in &path {
            if let Some(node) = self.node_mut(id) {
                node.last_used = tick;
                blocks.push(node.block);
            }
        }
        if let Some(&deepest) = path.last() {
            snapshot = self.node(deepest).map(|n| Arc::clone(&n.snapshot));
        }
        if snapshot.is_none() {
            return MatchOutcome::default();
        }
        MatchOutcome {
            tokens: matched,
            blocks,
            snapshot,
        }
    }

    /// Indexes a completed prefill: `blocks` are the sequence's physical
    /// blocks covering `prompt` (`blocks_for(prompt.len())` of them, last
    /// possibly partial), and `snapshot` is its frozen KV state. Chunks
    /// already cached are recency-refreshed (and their snapshot upgraded);
    /// uncovered full chunks become new nodes sharing the donor's blocks;
    /// an uncovered partial tail is copied through `fork_tail(src_block,
    /// fill)` so the donor's own tail stays writable — `None` from the
    /// callback (pool exhausted) skips tail caching.
    ///
    /// The caller owns the allocator follow-up described on
    /// [`InsertReport`].
    pub fn insert(
        &mut self,
        prompt: &[u16],
        blocks: &[usize],
        flavor: Flavor,
        snapshot: Arc<Snapshot>,
        tick: u64,
        fork_tail: &mut dyn FnMut(usize, usize) -> Option<usize>,
    ) -> InsertReport {
        let bs = self.block_size;
        let mut report = InsertReport::default();
        let full_chunks = prompt.len() / bs;
        let mut parent: Option<usize> = None;
        for k in 0..full_chunks {
            let Some(chunk) = prompt.get(k * bs..(k + 1) * bs) else {
                return report;
            };
            let existing = self
                .children_of(parent, flavor)
                .iter()
                .copied()
                .find(|&id| self.node(id).is_some_and(|n| n.chunk == chunk));
            match existing {
                Some(id) => {
                    if let Some(n) = self.node_mut(id) {
                        n.last_used = tick;
                        n.snapshot = Arc::clone(&snapshot);
                    }
                    parent = Some(id);
                }
                None => {
                    let Some(&block) = blocks.get(k) else {
                        return report;
                    };
                    let stamp = self.next_stamp;
                    self.next_stamp += 1;
                    let id = self.alloc_node(Node {
                        flavor,
                        chunk: chunk.to_vec(),
                        block,
                        parent,
                        children: Vec::new(),
                        snapshot: Arc::clone(&snapshot),
                        last_used: tick,
                        stamp,
                    });
                    report.newly_shared.push(block);
                    report.new_nodes += 1;
                    parent = Some(id);
                }
            }
        }
        let tail = prompt.get(full_chunks * bs..).unwrap_or(&[]);
        if !tail.is_empty() {
            let existing = self
                .children_of(parent, flavor)
                .iter()
                .copied()
                .find(|&id| self.node(id).is_some_and(|n| n.chunk == tail));
            match existing {
                Some(id) => {
                    if let Some(n) = self.node_mut(id) {
                        n.last_used = tick;
                        n.snapshot = Arc::clone(&snapshot);
                    }
                }
                None => {
                    let Some(&src) = blocks.get(full_chunks) else {
                        return report;
                    };
                    match fork_tail(src, tail.len()) {
                        Some(copy) => {
                            let stamp = self.next_stamp;
                            self.next_stamp += 1;
                            self.alloc_node(Node {
                                flavor,
                                chunk: tail.to_vec(),
                                block: copy,
                                parent,
                                children: Vec::new(),
                                snapshot: Arc::clone(&snapshot),
                                last_used: tick,
                                stamp,
                            });
                            report.new_nodes += 1;
                        }
                        None => report.tail_fork_failed = true,
                    }
                }
            }
        }
        report
    }

    /// Evicts the least-recently-used leaf whose block passes `evictable`
    /// (the engine passes "allocator refcount == 1", i.e. only the cache
    /// still holds it), returning its block for the caller to release.
    /// Recency ties break by creation stamp, then slot index — fully
    /// deterministic. Returns `None` when nothing qualifies.
    pub fn evict_lru(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<(u64, u64, usize)> = None;
        for (id, slot) in self.slots.iter().enumerate() {
            let Some(n) = slot else { continue };
            if !n.children.is_empty() || !evictable(n.block) {
                continue;
            }
            let key = (n.last_used, n.stamp, id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, id) = best?;
        self.remove_node(id)
    }

    fn remove_node(&mut self, id: usize) -> Option<usize> {
        let node = self.slots.get_mut(id)?.take()?;
        self.node_count -= 1;
        self.free_slots.push(id);
        match node.parent {
            Some(p) => {
                if let Some(pn) = self.node_mut(p) {
                    pn.children.retain(|&c| c != id);
                }
            }
            None => {
                if let Some(r) = self.roots.get_mut(&node.flavor) {
                    r.retain(|&c| c != id);
                }
            }
        }
        Some(node.block)
    }

    /// Drops every node, returning all cached block ids (arena order) for
    /// the caller to release.
    pub fn clear(&mut self) -> Vec<usize> {
        let blocks = self.blocks();
        self.slots.clear();
        self.free_slots.clear();
        self.roots.clear();
        self.node_count = 0;
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::Fp32KvCache;

    fn snap(tokens: usize) -> Arc<Snapshot> {
        Arc::new(Snapshot::new(Box::new(Fp32KvCache::new(1, 2)), tokens))
    }

    fn prompt(n: usize, offset: u16) -> Vec<u16> {
        (0..n as u16).map(|t| t + offset).collect()
    }

    #[test]
    fn insert_then_match_full_and_partial() {
        let mut idx = RadixIndex::new(4);
        let p = prompt(10, 0); // 2 full chunks + 2-token tail
        let report =
            idx.insert(&p, &[10, 11, 12], FLAVOR_NORMAL, snap(10), 0, &mut |src, fill| {
                assert_eq!((src, fill), (12, 2));
                Some(20)
            });
        assert_eq!(report.newly_shared, vec![10, 11]);
        assert_eq!(report.new_nodes, 3);
        assert_eq!(idx.len(), 3);
        // Exact-prompt query capped at len-1: tail (8..10) would reach 10 > 9.
        let hit = idx.match_prefix(&p, FLAVOR_NORMAL, p.len() - 1, 1);
        assert_eq!(hit.tokens, 8);
        assert_eq!(hit.blocks, vec![10, 11]);
        assert!(hit.snapshot.is_some());
        // A longer query with the same prefix takes the tail too.
        let longer: Vec<u16> = p.iter().copied().chain([99, 98]).collect();
        let hit = idx.match_prefix(&longer, FLAVOR_NORMAL, longer.len() - 1, 2);
        assert_eq!(hit.tokens, 10);
        assert_eq!(hit.blocks, vec![10, 11, 20]);
    }

    #[test]
    fn miss_on_divergent_content_and_flavor() {
        let mut idx = RadixIndex::new(4);
        let p = prompt(8, 0);
        idx.insert(&p, &[1, 2], FLAVOR_NORMAL, snap(8), 0, &mut |_, _| None);
        let divergent = prompt(8, 1);
        assert_eq!(idx.match_prefix(&divergent, FLAVOR_NORMAL, 7, 1).tokens, 0);
        assert_eq!(idx.match_prefix(&p, FLAVOR_DEGRADED, 7, 1).tokens, 0, "flavors are isolated");
        assert_eq!(idx.match_prefix(&p, FLAVOR_NORMAL, 7, 1).tokens, 4);
    }

    #[test]
    fn dedup_refreshes_instead_of_duplicating() {
        let mut idx = RadixIndex::new(4);
        let p = prompt(8, 0);
        idx.insert(&p, &[1, 2], FLAVOR_NORMAL, snap(8), 0, &mut |_, _| None);
        let report = idx.insert(&p, &[7, 8], FLAVOR_NORMAL, snap(8), 5, &mut |_, _| None);
        assert_eq!(report.new_nodes, 0);
        assert!(report.newly_shared.is_empty());
        assert_eq!(idx.len(), 2);
        // Recency was refreshed: evicting now picks slot order among equal
        // ticks, but both nodes carry last_used = 5.
        let evicted = idx.evict_lru(&|_| true);
        assert!(evicted.is_some());
    }

    #[test]
    fn eviction_is_lru_and_leaf_only() {
        let mut idx = RadixIndex::new(4);
        let a = prompt(8, 0);
        let b = prompt(8, 50);
        idx.insert(&a, &[1, 2], FLAVOR_NORMAL, snap(8), 0, &mut |_, _| None);
        idx.insert(&b, &[3, 4], FLAVOR_NORMAL, snap(8), 1, &mut |_, _| None);
        // Touch `a` (full-length cap so both its chunks bump) so `b`
        // becomes least recent.
        idx.match_prefix(&a, FLAVOR_NORMAL, 8, 2);
        // The leaves are blocks 2 (a, tick 2) and 4 (b, tick 1): LRU = 4.
        assert_eq!(idx.evict_lru(&|_| true), Some(4));
        // Now b's first chunk (block 3) is a leaf with tick 1.
        assert_eq!(idx.evict_lru(&|_| true), Some(3));
        assert_eq!(idx.evict_lru(&|_| true), Some(2));
        assert_eq!(idx.evict_lru(&|_| true), Some(1));
        assert_eq!(idx.evict_lru(&|_| true), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn eviction_respects_the_block_predicate() {
        let mut idx = RadixIndex::new(4);
        idx.insert(&prompt(4, 0), &[1], FLAVOR_NORMAL, snap(4), 0, &mut |_, _| None);
        idx.insert(&prompt(4, 9), &[2], FLAVOR_NORMAL, snap(4), 1, &mut |_, _| None);
        assert_eq!(idx.evict_lru(&|b| b != 1), Some(2), "pinned block 1 is skipped");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn failed_tail_fork_keeps_full_blocks() {
        let mut idx = RadixIndex::new(4);
        let p = prompt(6, 0);
        let report = idx.insert(&p, &[1, 2], FLAVOR_NORMAL, snap(6), 0, &mut |_, _| None);
        assert!(report.tail_fork_failed);
        assert_eq!(report.newly_shared, vec![1]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn clear_returns_every_block() {
        let mut idx = RadixIndex::new(4);
        idx.insert(&prompt(10, 0), &[1, 2, 3], FLAVOR_NORMAL, snap(10), 0, &mut |_, _| Some(9));
        let mut blocks = idx.clear();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![1, 2, 9]);
        assert!(idx.is_empty());
        assert!(idx.blocks().is_empty());
    }

    #[test]
    fn longest_partial_sibling_wins() {
        let mut idx = RadixIndex::new(4);
        // Two partial leaves under the root: [0,1] and [0,1,2].
        idx.insert(&[0, 1], &[1], FLAVOR_NORMAL, snap(2), 0, &mut |_, _| Some(11));
        idx.insert(&[0, 1, 2], &[2], FLAVOR_NORMAL, snap(3), 1, &mut |_, _| Some(12));
        let hit = idx.match_prefix(&[0, 1, 2, 3, 4], FLAVOR_NORMAL, 4, 2);
        assert_eq!(hit.tokens, 3);
        assert_eq!(hit.blocks, vec![12]);
        // Under a tighter cap only the shorter leaf fits.
        let hit = idx.match_prefix(&[0, 1, 2, 3, 4], FLAVOR_NORMAL, 2, 3);
        assert_eq!(hit.tokens, 2);
        assert_eq!(hit.blocks, vec![11]);
    }
}
