//! Property-based tests of the radix index: lookup/insert consistency,
//! flavor isolation, and eviction draining under randomized prompt sets
//! against a model block allocator (plain refcounts).

use atom_nn::Fp32KvCache;
use atom_prefix::{RadixIndex, Snapshot, FLAVOR_DEGRADED, FLAVOR_NORMAL};
use proptest::prelude::*;
use std::sync::Arc;

const BS: usize = 8;

fn snap(tokens: usize) -> Arc<Snapshot> {
    Arc::new(Snapshot::new(Box::new(Fp32KvCache::new(1, 2)), tokens))
}

/// A model allocator: refcounted block ids with no tables. `alloc` hands
/// out fresh ids, mirroring how the real pool backs donor sequences and
/// forked tails.
struct ModelAlloc {
    refs: Vec<u32>,
}

impl ModelAlloc {
    fn new() -> Self {
        ModelAlloc { refs: Vec::new() }
    }

    fn alloc(&mut self) -> usize {
        if let Some(free) = self.refs.iter().position(|&r| r == 0) {
            self.refs[free] = 1;
            free
        } else {
            self.refs.push(1);
            self.refs.len() - 1
        }
    }

    fn retain(&mut self, b: usize) {
        self.refs[b] += 1;
    }

    fn release(&mut self, b: usize) {
        assert!(self.refs[b] > 0, "refcount underflow on block {b}");
        self.refs[b] -= 1;
    }

    fn live(&self) -> usize {
        self.refs.iter().filter(|&&r| r > 0).count()
    }
}

/// Deterministic prompt content for a small prompt family: family `f`,
/// length `len`. Prompts of one family share all leading tokens, so the
/// index actually dedups chunks across insertions.
fn prompt(f: usize, len: usize) -> Vec<u16> {
    (0..len).map(|t| ((f * 17 + t * 3) % 96) as u16).collect()
}

/// Inserts `p` as a fresh donor: donor blocks are allocated, shared with
/// the index per the report, then the donor releases its own references —
/// exactly the engine's completed-prefill flow.
fn donate(index: &mut RadixIndex, alloc: &mut ModelAlloc, p: &[u16], flavor: u8, tick: u64) {
    let blocks: Vec<usize> = (0..p.len().div_ceil(BS)).map(|_| alloc.alloc()).collect();
    let report = index.insert(p, &blocks, flavor, snap(p.len()), tick, &mut |_src, _fill| {
        Some(alloc.alloc())
    });
    for &b in &report.newly_shared {
        alloc.retain(b);
    }
    for &b in &blocks {
        alloc.release(b);
    }
}

/// Every invariant the index must preserve at all times against the model
/// allocator.
fn check(index: &RadixIndex, alloc: &ModelAlloc) -> Result<(), TestCaseError> {
    let blocks = index.blocks();
    prop_assert_eq!(blocks.len(), index.len(), "one block per node");
    let mut sorted = blocks.clone();
    sorted.sort_unstable();
    sorted.dedup();
    prop_assert_eq!(sorted.len(), blocks.len(), "no block in two nodes");
    for &b in &blocks {
        prop_assert!(alloc.refs[b] > 0, "index holds dead block {b}");
    }
    Ok(())
}

proptest! {
    #[test]
    fn interleavings_preserve_refcounts_and_lookup(
        ops in proptest::collection::vec((0usize..4, 0usize..4, 1usize..33), 1..50),
    ) {
        let mut index = RadixIndex::new(BS);
        let mut alloc = ModelAlloc::new();
        for (tick, (op, family, len)) in ops.into_iter().enumerate() {
            match op {
                0 | 1 => {
                    let p = prompt(family, len);
                    donate(&mut index, &mut alloc, &p, FLAVOR_NORMAL, tick as u64);
                    // Lookup consistency, before any later eviction: a
                    // donated prompt re-matches at least its own full
                    // chunks (the cap excludes the last token, so an
                    // exact-multiple prompt matches one chunk short; a
                    // sibling's partial tail may extend the match further
                    // since same-family prompts share leading bytes).
                    let m = index.match_prefix(&p, FLAVOR_NORMAL, len - 1, tick as u64);
                    let full = len / BS;
                    let floor = if len % BS == 0 {
                        full.saturating_sub(1) * BS
                    } else {
                        full * BS
                    };
                    prop_assert!(m.tokens >= floor, "family {} len {}: {} < {}", family, len, m.tokens, floor);
                    prop_assert!(m.tokens < len, "cap excludes the full prompt");
                    prop_assert!(m.blocks.len() >= floor / BS);
                    // Flavor isolation: the same bytes under the other
                    // flavor miss.
                    let other = index.match_prefix(&p, FLAVOR_DEGRADED, len - 1, tick as u64);
                    prop_assert_eq!(other.tokens, 0);
                }
                2 => {
                    // Lookup never dangles: matched tokens respect the cap
                    // and every returned block is live.
                    let p = prompt(family, len);
                    let m = index.match_prefix(&p, FLAVOR_NORMAL, len.saturating_sub(1), tick as u64);
                    prop_assert!(m.tokens < len.max(1), "cap respected");
                    prop_assert_eq!(m.snapshot.is_some(), m.tokens > 0);
                    for &b in &m.blocks {
                        prop_assert!(alloc.refs[b] > 0, "match returned dead block {b}");
                    }
                }
                _ => {
                    if let Some(b) = index.evict_lru(&|b| alloc.refs[b] == 1) {
                        prop_assert_eq!(alloc.refs[b], 1, "evicted a shared block");
                        alloc.release(b);
                    }
                }
            }
            check(&index, &alloc)?;
        }

        // Drain: with every block evictable the index empties, and with
        // its references gone the model pool is pristine.
        while let Some(b) = index.evict_lru(&|_| true) {
            alloc.release(b);
        }
        prop_assert!(index.is_empty());
        prop_assert_eq!(index.len(), 0);
        prop_assert_eq!(alloc.live(), 0, "leaked blocks after full eviction");
    }

    #[test]
    fn clear_returns_every_held_block(
        prompts in proptest::collection::vec((0usize..3, 1usize..40), 1..12),
    ) {
        let mut index = RadixIndex::new(BS);
        let mut alloc = ModelAlloc::new();
        for (tick, &(family, len)) in prompts.iter().enumerate() {
            donate(&mut index, &mut alloc, &prompt(family, len), FLAVOR_NORMAL, tick as u64);
        }
        let mut held = index.blocks();
        held.sort_unstable();
        let mut cleared = index.clear();
        cleared.sort_unstable();
        prop_assert_eq!(cleared, held, "clear surrenders exactly the held blocks");
        prop_assert!(index.is_empty());
    }
}
