//! Property-based tests of the data substrate.

use atom_data::corpus::lexicon;
use atom_data::{Corpus, CorpusStyle, TaskSuite, Tokenizer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn corpora_are_deterministic_and_tokenizable(
        seed in 0u64..200,
        style_idx in 0usize..3,
        chars in 500usize..4000,
    ) {
        let style = CorpusStyle::all()[style_idx];
        let a = Corpus::generate(style, chars, seed);
        let b = Corpus::generate(style, chars, seed);
        prop_assert_eq!(a.text(), b.text());
        prop_assert!(a.text().len() >= chars);
        let tok = Tokenizer::new();
        prop_assert_eq!(tok.decode(&tok.encode(a.text())), a.text());
    }

    #[test]
    fn splits_partition_exactly(seed in 0u64..100, frac in 0.5f64..0.95) {
        let c = Corpus::generate(CorpusStyle::Wiki, 4000, seed);
        let (train, valid) = c.split(frac);
        prop_assert_eq!(train.len() + valid.len(), c.text().len());
        prop_assert!(train.len() as f64 >= c.text().len() as f64 * frac * 0.8);
    }

    #[test]
    fn task_answers_consistent_with_lexicon(seed in 0u64..200, items in 1usize..30) {
        let suite = TaskSuite::generate(items, seed);
        prop_assert_eq!(suite.all_items().len(), items * 6);
        for t in suite.all_items() {
            prop_assert!(t.answer < t.options.len());
            prop_assert!(t.num_options() >= 2);
            // Every prompt mentions a real lexicon entity.
            let mentions_entity = lexicon::ENTITIES
                .iter()
                .any(|e| t.prompt.contains(e.name) || t.options.iter().any(|o| o.contains(e.name)));
            prop_assert!(mentions_entity, "no entity in {t:?}");
        }
    }

    #[test]
    fn class_tasks_have_correct_class_as_answer(seed in 0u64..100) {
        let suite = TaskSuite::generate(20, seed);
        for t in suite.items(atom_data::TaskKind::ClassEasy) {
            // "the <name> is a" -> correct option is " <class> ."
            let name = t.prompt.split(' ').nth(1).unwrap();
            let e = lexicon::entity(name).unwrap();
            let expect = format!("{} .", e.class);
            prop_assert_eq!(t.options[t.answer].trim(), expect.as_str());
        }
    }

    #[test]
    fn tokenizer_total(ids in proptest::collection::vec(0u16..200, 0..64)) {
        // Decoding any id sequence never panics and re-encodes to valid ids.
        let tok = Tokenizer::new();
        let text = tok.decode(&ids);
        let re = tok.encode(&text);
        prop_assert_eq!(re.len(), ids.len());
        prop_assert!(re.iter().all(|&t| (t as usize) < tok.vocab_size()));
    }
}
