//! Six likelihood-scored zero-shot tasks standing in for the paper's lm-eval
//! suite (PIQA, ARC-e, ARC-c, BoolQ, HellaSwag, WinoGrande).
//!
//! Each task item is a prompt plus a set of textual options, exactly one of
//! which is correct given the facts baked into [`crate::corpus::lexicon`].
//! Scoring follows lm-eval's multiple-choice rule: the model scores each
//! `prompt + option` continuation by length-normalized log-likelihood and
//! picks the best option. A model that has learned the corpus regularities
//! scores far above chance; a badly quantized model collapses toward chance —
//! the same dynamic Table 1 of the paper shows between Atom and the RTN/
//! SmoothQuant baselines at W4A4.

use crate::corpus::lexicon::{self, Entity};
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// The six task families, named for the lm-eval tasks they stand in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Affordance: "to strike a nail , use the" → tool (PIQA stand-in).
    Affordance,
    /// Class membership, easy distractors (ARC-e stand-in).
    ClassEasy,
    /// Class membership, same-category hard distractors (ARC-c stand-in).
    ClassHard,
    /// Yes/no fact verification (BoolQ stand-in).
    BoolQa,
    /// Plausible continuation of an entity description (HellaSwag stand-in).
    Continuation,
    /// Subject–verb number agreement (WinoGrande stand-in).
    Agreement,
}

impl TaskKind {
    /// All kinds in Table 1 column order.
    pub fn all() -> [TaskKind; 6] {
        [
            TaskKind::Affordance,
            TaskKind::ClassEasy,
            TaskKind::ClassHard,
            TaskKind::BoolQa,
            TaskKind::Continuation,
            TaskKind::Agreement,
        ]
    }

    /// Column label used in Table 1 output.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Affordance => "PIQA*",
            TaskKind::ClassEasy => "ARC-e*",
            TaskKind::ClassHard => "ARC-c*",
            TaskKind::BoolQa => "BoolQ*",
            TaskKind::Continuation => "HellaSw*",
            TaskKind::Agreement => "WinoGr*",
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Task family.
    pub kind: TaskKind,
    /// Prompt text the options continue.
    pub prompt: String,
    /// Candidate continuations.
    pub options: Vec<String>,
    /// Index of the correct option.
    pub answer: usize,
}

impl Task {
    /// Number of options (chance accuracy is `1 / num_options`).
    pub fn num_options(&self) -> usize {
        self.options.len()
    }
}

/// A generated suite of task items, grouped by kind.
///
/// # Example
///
/// ```
/// use atom_data::{TaskKind, TaskSuite};
///
/// let suite = TaskSuite::generate(10, 42);
/// assert_eq!(suite.items(TaskKind::BoolQa).len(), 10);
/// for t in suite.items(TaskKind::BoolQa) {
///     assert!(t.answer < t.options.len());
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSuite {
    items_per_kind: usize,
    items: Vec<Task>,
}

impl TaskSuite {
    /// Generates `items_per_kind` items for each of the six kinds.
    pub fn generate(items_per_kind: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed ^ 0x7A5C_0DE5);
        let mut items = Vec::with_capacity(items_per_kind * 6);
        for kind in TaskKind::all() {
            for _ in 0..items_per_kind {
                items.push(make_item(kind, &mut rng));
            }
        }
        TaskSuite {
            items_per_kind,
            items,
        }
    }

    /// All items across all kinds.
    pub fn all_items(&self) -> &[Task] {
        &self.items
    }

    /// Items of one kind.
    pub fn items(&self, kind: TaskKind) -> Vec<&Task> {
        self.items.iter().filter(|t| t.kind == kind).collect()
    }

    /// Number of items per kind.
    pub fn items_per_kind(&self) -> usize {
        self.items_per_kind
    }
}

fn pick(rng: &mut SeededRng) -> &'static Entity {
    &lexicon::ENTITIES[rng.below(lexicon::ENTITIES.len())]
}

fn pick_with_purpose(rng: &mut SeededRng) -> &'static Entity {
    loop {
        let e = pick(rng);
        if !e.purpose.is_empty() {
            return e;
        }
    }
}

fn distinct_class(rng: &mut SeededRng, not: &str) -> &'static str {
    let classes = lexicon::classes();
    loop {
        let c = classes[rng.below(classes.len())];
        if c != not {
            return c;
        }
    }
}

fn make_item(kind: TaskKind, rng: &mut SeededRng) -> Task {
    match kind {
        TaskKind::Affordance => {
            let e = pick_with_purpose(rng);
            let mut wrong1 = pick_with_purpose(rng);
            while wrong1.name == e.name {
                wrong1 = pick_with_purpose(rng);
            }
            let mut wrong2 = pick(rng);
            while wrong2.name == e.name || wrong2.name == wrong1.name {
                wrong2 = pick(rng);
            }
            shuffled(
                TaskKind::Affordance,
                format!("to {} , use the", e.purpose),
                vec![
                    format!(" {} .", e.name),
                    format!(" {} .", wrong1.name),
                    format!(" {} .", wrong2.name),
                ],
                rng,
            )
        }
        TaskKind::ClassEasy => {
            let e = pick(rng);
            let w1 = distinct_class(rng, e.class);
            let mut w2 = distinct_class(rng, e.class);
            while w2 == w1 {
                w2 = distinct_class(rng, e.class);
            }
            shuffled(
                TaskKind::ClassEasy,
                format!("the {} is a", e.name),
                vec![
                    format!(" {} .", e.class),
                    format!(" {} .", w1),
                    format!(" {} .", w2),
                ],
                rng,
            )
        }
        TaskKind::ClassHard => {
            // Hard version: options are full sentences about a *different*
            // entity sharing surface words, and there are four options.
            let e = pick(rng);
            let w1 = distinct_class(rng, e.class);
            let mut w2 = distinct_class(rng, e.class);
            while w2 == w1 {
                w2 = distinct_class(rng, e.class);
            }
            let mut w3 = distinct_class(rng, e.class);
            while w3 == w1 || w3 == w2 {
                w3 = distinct_class(rng, e.class);
            }
            shuffled(
                TaskKind::ClassHard,
                format!("early records describe the {} as a common", e.name),
                vec![
                    format!(" {} .", e.class),
                    format!(" {} .", w1),
                    format!(" {} .", w2),
                    format!(" {} .", w3),
                ],
                rng,
            )
        }
        TaskKind::BoolQa => {
            let e = pick(rng);
            let truthy = rng.below(2) == 0;
            let class = if truthy {
                e.class
            } else {
                distinct_class(rng, e.class)
            };
            let answer = usize::from(!truthy); // option 0 is "yes"
            Task {
                kind: TaskKind::BoolQa,
                prompt: format!("is the {} a {} ?", e.name, class),
                options: vec![" yes .".to_string(), " no .".to_string()],
                answer,
            }
        }
        TaskKind::Continuation => {
            let e = pick(rng);
            let mut w1 = pick(rng);
            while w1.action == e.action {
                w1 = pick(rng);
            }
            let mut w2 = pick(rng);
            while w2.action == e.action || w2.action == w1.action {
                w2 = pick(rng);
            }
            shuffled(
                TaskKind::Continuation,
                format!("the {}", e.name),
                vec![
                    format!(" {} .", e.action),
                    format!(" {} .", w1.action),
                    format!(" {} .", w2.action),
                ],
                rng,
            )
        }
        TaskKind::Agreement => {
            let e = pick(rng);
            let verb = e.action.split(' ').next().unwrap_or("stands");
            let plural = crate::corpus::plural_for_tasks(verb);
            Task {
                kind: TaskKind::Agreement,
                prompt: format!("one {} {} while two {}s", e.name, verb, e.name),
                options: vec![format!(" {plural} ."), format!(" {verb} .")],
                answer: 0,
            }
        }
    }
}

/// Shuffles options (answer index tracked) so the correct answer position is
/// uniform.
fn shuffled(kind: TaskKind, prompt: String, options: Vec<String>, rng: &mut SeededRng) -> Task {
    let n = options.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let answer = order.iter().position(|&o| o == 0).expect("answer present");
    let options = order.into_iter().map(|o| options[o].clone()).collect();
    Task {
        kind,
        prompt,
        options,
        answer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_kinds() {
        let suite = TaskSuite::generate(5, 1);
        assert_eq!(suite.all_items().len(), 30);
        for kind in TaskKind::all() {
            assert_eq!(suite.items(kind).len(), 5);
        }
    }

    #[test]
    fn answers_in_range_and_options_distinct() {
        let suite = TaskSuite::generate(50, 2);
        for t in suite.all_items() {
            assert!(t.answer < t.options.len(), "{t:?}");
            let mut opts = t.options.clone();
            opts.sort();
            opts.dedup();
            assert_eq!(opts.len(), t.options.len(), "duplicate options in {t:?}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = TaskSuite::generate(10, 3);
        let b = TaskSuite::generate(10, 3);
        assert_eq!(a.all_items(), b.all_items());
    }

    #[test]
    fn boolqa_answer_consistent_with_lexicon() {
        let suite = TaskSuite::generate(100, 4);
        for t in suite.items(TaskKind::BoolQa) {
            // Parse "is the <name> a <class> ?"
            let words: Vec<&str> = t.prompt.split(' ').collect();
            let name = words[2];
            let class = words[4];
            let e = lexicon::entity(name).unwrap();
            let truthy = e.class == class;
            let expected = usize::from(!truthy);
            assert_eq!(t.answer, expected, "{t:?}");
        }
    }

    #[test]
    fn answer_positions_are_shuffled() {
        let suite = TaskSuite::generate(100, 5);
        let positions: Vec<usize> = suite
            .items(TaskKind::ClassEasy)
            .iter()
            .map(|t| t.answer)
            .collect();
        // With 100 items across 3 positions, all positions should occur.
        for p in 0..3 {
            assert!(positions.contains(&p), "position {p} never used");
        }
    }

    #[test]
    fn prompts_are_tokenizable() {
        let tok = crate::Tokenizer::new();
        let suite = TaskSuite::generate(20, 6);
        for t in suite.all_items() {
            assert_eq!(tok.decode(&tok.encode(&t.prompt)), t.prompt);
            for o in &t.options {
                assert_eq!(tok.decode(&tok.encode(o)), *o);
            }
        }
    }
}
