//! ShareGPT-like serving workload model.
//!
//! The paper generates its end-to-end workload by collecting the prefill and
//! decode length distributions from ShareGPT, treating multi-round
//! conversations as requests from multiple users whose prompts concatenate
//! all previous rounds (§5.3.2). This module reproduces that process from a
//! parametric model: log-normal single-round lengths (the published ShareGPT
//! fits), a geometric number of conversation rounds, and Poisson arrivals.

use atom_tensor::cast;
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// One inference request: arrive, prefill `prefill_tokens`, then decode
/// `decode_tokens` one token at a time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (dense, in arrival order).
    pub id: usize,
    /// Arrival time in seconds from trace start.
    pub arrival_s: f64,
    /// Prompt length in tokens (includes concatenated history for
    /// multi-round conversations).
    pub prefill_tokens: usize,
    /// Number of tokens to generate.
    pub decode_tokens: usize,
}

impl Request {
    /// Total KV-cache footprint of the finished request, in tokens.
    pub fn total_context(&self) -> usize {
        self.prefill_tokens + self.decode_tokens
    }
}

/// Parameters of the synthetic ShareGPT-like trace.
///
/// Defaults follow published ShareGPT statistics: median prompt around 160
/// tokens, median response around 190 tokens, heavy right tails, and roughly
/// 30% of requests continuing an earlier conversation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// `mu` of the log-normal prefill length (log-tokens).
    pub prefill_mu: f64,
    /// `sigma` of the log-normal prefill length.
    pub prefill_sigma: f64,
    /// `mu` of the log-normal decode length (log-tokens).
    pub decode_mu: f64,
    /// `sigma` of the log-normal decode length.
    pub decode_sigma: f64,
    /// Probability that a request continues the previous conversation,
    /// concatenating its full history into the new prompt.
    pub continuation_prob: f64,
    /// Mean request arrival rate (requests per second).
    pub arrival_rate: f64,
    /// Hard cap on any single request's context length in tokens.
    pub max_context: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            prefill_mu: 5.1,
            prefill_sigma: 1.1,
            decode_mu: 5.25,
            decode_sigma: 0.9,
            continuation_prob: 0.3,
            arrival_rate: 16.0,
            max_context: 4096,
        }
    }
}

impl WorkloadSpec {
    /// Generates a deterministic trace of `n` requests.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (non-positive rate or sigma).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        assert!(self.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(
            self.prefill_sigma > 0.0 && self.decode_sigma > 0.0,
            "sigmas must be positive"
        );
        let mut rng = SeededRng::new(seed ^ 0x5847_6054);
        let mut out = Vec::with_capacity(n);
        let mut clock = 0.0f64;
        // History of recent finished conversations available for
        // continuation (conversation total length in tokens).
        let mut history: Vec<usize> = Vec::new();
        for id in 0..n {
            clock += rng.exponential_f64(self.arrival_rate);
            let base_prefill = (rng.lognormal_f64(self.prefill_mu, self.prefill_sigma) as usize).max(4);
            let decode = (rng.lognormal_f64(self.decode_mu, self.decode_sigma) as usize).clamp(1, self.max_context / 2);
            let mut prefill = base_prefill;
            if !history.is_empty() && rng.uniform_f32() < cast::f64_to_f32(self.continuation_prob) {
                // Concatenate all previous prompts and responses (§5.3.2).
                let prior = history[rng.below(history.len())];
                prefill += prior;
            }
            prefill = prefill.min(self.max_context.saturating_sub(decode)).max(4);
            let req = Request {
                id,
                arrival_s: clock,
                prefill_tokens: prefill,
                decode_tokens: decode,
            };
            history.push(req.total_context().min(self.max_context));
            if history.len() > 64 {
                history.remove(0);
            }
            out.push(req);
        }
        out
    }

    /// Mean prefill and decode lengths of the spec's *single-round*
    /// log-normal distributions (before continuation concatenation).
    pub fn single_round_means(&self) -> (f64, f64) {
        let pf = (self.prefill_mu + self.prefill_sigma * self.prefill_sigma / 2.0).exp();
        let dc = (self.decode_mu + self.decode_sigma * self.decode_sigma / 2.0).exp();
        (pf, dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let spec = WorkloadSpec::default();
        let a = spec.generate(200, 1);
        let b = spec.generate(200, 1);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.windows(2).all(|w| w[0].id + 1 == w[1].id));
    }

    #[test]
    fn lengths_respect_bounds() {
        let spec = WorkloadSpec::default();
        for r in spec.generate(500, 2) {
            assert!(r.prefill_tokens >= 4);
            assert!(r.decode_tokens >= 1);
            assert!(r.total_context() <= spec.max_context + spec.max_context / 2);
        }
    }

    #[test]
    fn medians_are_in_sharegpt_ballpark() {
        let spec = WorkloadSpec::default();
        let trace = spec.generate(2000, 3);
        let mut prefills: Vec<usize> = trace.iter().map(|r| r.prefill_tokens).collect();
        prefills.sort_unstable();
        let median = prefills[prefills.len() / 2];
        assert!(
            (80..=600).contains(&median),
            "median prefill {median} outside expected band"
        );
    }

    #[test]
    fn continuations_make_longer_prompts() {
        let with = WorkloadSpec {
            continuation_prob: 0.9,
            ..WorkloadSpec::default()
        };
        let without = WorkloadSpec {
            continuation_prob: 0.0,
            ..WorkloadSpec::default()
        };
        let mean = |trace: &[Request]| {
            trace.iter().map(|r| r.prefill_tokens).sum::<usize>() as f64 / trace.len() as f64
        };
        let m_with = mean(&with.generate(1000, 4));
        let m_without = mean(&without.generate(1000, 4));
        assert!(m_with > m_without * 1.3, "{m_with} vs {m_without}");
    }

    #[test]
    fn arrival_rate_scales_duration() {
        let fast = WorkloadSpec {
            arrival_rate: 100.0,
            ..WorkloadSpec::default()
        };
        let slow = WorkloadSpec {
            arrival_rate: 1.0,
            ..WorkloadSpec::default()
        };
        let end = |trace: &[Request]| trace.last().unwrap().arrival_s;
        assert!(end(&fast.generate(300, 5)) < end(&slow.generate(300, 5)));
    }

    #[test]
    fn single_round_means_formula() {
        let spec = WorkloadSpec::default();
        let (pf, dc) = spec.single_round_means();
        assert!(pf > 100.0 && pf < 1000.0);
        assert!(dc > 100.0 && dc < 1000.0);
    }
}
