//! Open-loop multi-tenant arrival traces for the serving gateway.
//!
//! [`workload`](crate::workload) models *what* a request looks like
//! (ShareGPT-like length distributions); this module models *when* requests
//! arrive and *who* sends them, at the scale the gateway must survive:
//! millions of users whose aggregate traffic follows diurnal cycles, bursty
//! on/off phases, and flash crowds. A [`TrafficSpec`] compiles a
//! [`pattern`](ArrivalPattern) plus a tenant mix into a deterministic
//! tick-indexed trace of [`Arrival`]s that the gateway replays open-loop —
//! arrivals never wait for completions, exactly like real traffic.
//!
//! Arrivals are drawn from a non-homogeneous Poisson process by thinning: a
//! homogeneous candidate stream at the pattern's peak rate is kept with
//! probability `rate(tick) / peak_rate`. Everything is a pure function of
//! the spec and the seed, so the same trace replays bit-identically on any
//! host and thread count.

use atom_tensor::cast;
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// One gateway arrival: at `tick`, tenant `tenant` offers a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Gateway tick at which the offer lands.
    pub tick: u64,
    /// Index into the spec's tenant list.
    pub tenant: usize,
    /// Prompt length in tokens.
    pub prefill_tokens: usize,
    /// Tokens to generate.
    pub decode_tokens: usize,
    /// End-to-end completion budget in ticks from the offer, if the tenant
    /// runs with deadlines (interactive traffic does, batch traffic may
    /// not).
    pub deadline_ticks: Option<u64>,
}

/// One tenant's share and shape of the aggregate traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantTraffic {
    /// Relative share of aggregate arrivals (weights are normalized).
    pub share: f64,
    /// Inclusive prompt-length band in tokens.
    pub prefill_range: (usize, usize),
    /// Inclusive decode-length band in tokens.
    pub decode_range: (usize, usize),
    /// Per-request completion budget in ticks (`None`: no deadline).
    pub deadline_ticks: Option<u64>,
}

impl TenantTraffic {
    /// An interactive tenant: short prompts, short generations, tight
    /// deadlines.
    pub fn interactive(share: f64, deadline_ticks: u64) -> Self {
        TenantTraffic {
            share,
            prefill_range: (4, 24),
            decode_range: (2, 10),
            deadline_ticks: Some(deadline_ticks),
        }
    }

    /// A batch tenant: longer prompts and generations, no deadline.
    pub fn batch(share: f64) -> Self {
        TenantTraffic {
            share,
            prefill_range: (16, 64),
            decode_range: (8, 24),
            deadline_ticks: None,
        }
    }
}

/// Shape of the aggregate arrival-rate curve over the trace horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Constant rate.
    Steady,
    /// Sinusoidal day/night cycle: rate swings between `base / peak_to_trough`
    /// and `base * peak_to_trough` with the given period.
    Diurnal {
        /// Ticks per full cycle.
        period_ticks: u64,
        /// Peak-to-mean rate ratio (≥ 1; also the mean-to-trough ratio).
        peak_to_trough: f64,
    },
    /// Square-wave on/off phases: full rate for `on_ticks`, near-silence
    /// for `off_ticks`, repeating.
    Bursty {
        /// Ticks at full rate per cycle.
        on_ticks: u64,
        /// Ticks at 5% rate per cycle.
        off_ticks: u64,
    },
    /// Baseline traffic with a sudden spike: at `at_tick` the rate jumps to
    /// `magnitude ×` baseline and decays back exponentially.
    FlashCrowd {
        /// Tick of the spike.
        at_tick: u64,
        /// Rate multiplier at the spike (≥ 1).
        magnitude: f64,
        /// Ticks for the spike to decay to ~37% of its excess.
        decay_ticks: u64,
    },
}

impl ArrivalPattern {
    /// Rate multiplier at `tick` (1.0 = the spec's base rate).
    pub fn factor(&self, tick: u64) -> f64 {
        match *self {
            ArrivalPattern::Steady => 1.0,
            ArrivalPattern::Diurnal {
                period_ticks,
                peak_to_trough,
            } => {
                let period = period_ticks.max(1) as f64;
                let phase = (tick as f64 / period) * std::f64::consts::TAU;
                // ln-space sinusoid keeps the swing symmetric in ratio:
                // peak = base * r, trough = base / r.
                (phase.sin() * peak_to_trough.max(1.0).ln()).exp()
            }
            ArrivalPattern::Bursty { on_ticks, off_ticks } => {
                let cycle = (on_ticks + off_ticks).max(1);
                if tick % cycle < on_ticks {
                    1.0
                } else {
                    0.05
                }
            }
            ArrivalPattern::FlashCrowd {
                at_tick,
                magnitude,
                decay_ticks,
            } => {
                if tick < at_tick {
                    1.0
                } else {
                    let dt = (tick - at_tick) as f64;
                    let decay = decay_ticks.max(1) as f64;
                    1.0 + (magnitude.max(1.0) - 1.0) * (-dt / decay).exp()
                }
            }
        }
    }

    /// The pattern's maximum rate multiplier over any horizon (used as the
    /// thinning envelope).
    pub fn peak_factor(&self) -> f64 {
        match *self {
            ArrivalPattern::Steady => 1.0,
            ArrivalPattern::Diurnal { peak_to_trough, .. } => peak_to_trough.max(1.0),
            ArrivalPattern::Bursty { .. } => 1.0,
            ArrivalPattern::FlashCrowd { magnitude, .. } => magnitude.max(1.0),
        }
    }
}

/// A complete open-loop traffic scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Mean arrivals per tick at pattern factor 1.0.
    pub base_rate_per_tick: f64,
    /// Rate curve over the horizon.
    pub pattern: ArrivalPattern,
    /// Trace length in ticks; no arrival lands at or past this tick.
    pub horizon_ticks: u64,
    /// Tenant mix (must be non-empty; shares are normalized).
    pub tenants: Vec<TenantTraffic>,
    /// Real users each trace request stands for. Purely descriptive — it
    /// scales reported "users served" without inflating the replayed
    /// request count, the standard trick for simulating millions of users
    /// on one box.
    pub users_per_request: u64,
}

impl TrafficSpec {
    /// Generates the deterministic arrival trace for `seed`.
    ///
    /// Arrivals come out sorted by tick (ties in draw order). Degenerate
    /// specs (no tenants, non-positive rate, zero horizon) yield an empty
    /// trace rather than panicking — the gateway treats an empty trace as
    /// zero load.
    pub fn generate(&self, seed: u64) -> Vec<Arrival> {
        let peak = self.base_rate_per_tick.max(0.0) * self.pattern.peak_factor();
        if self.tenants.is_empty() || peak <= 0.0 || self.horizon_ticks == 0 {
            return Vec::new();
        }
        let shares: Vec<f64> = self.tenants.iter().map(|t| t.share.max(0.0)).collect();
        if shares.iter().sum::<f64>() <= 0.0 {
            return Vec::new();
        }
        let mut rng = SeededRng::new(seed ^ 0x7AFF_1C00);
        let mut out = Vec::new();
        // Homogeneous candidate stream at the peak rate, thinned to the
        // pattern's instantaneous rate.
        let mut clock = 0.0f64;
        loop {
            clock += rng.exponential_f64(peak);
            let tick = clock as u64;
            if tick >= self.horizon_ticks {
                break;
            }
            let keep = self.pattern.factor(tick) / self.pattern.peak_factor();
            if rng.uniform_f32() >= cast::f64_to_f32(keep) {
                continue;
            }
            let tenant = rng.weighted_index(&shares);
            let Some(profile) = self.tenants.get(tenant) else {
                continue; // unreachable: weighted_index is in-range
            };
            out.push(Arrival {
                tick,
                tenant,
                prefill_tokens: sample_range(&mut rng, profile.prefill_range).max(1),
                decode_tokens: sample_range(&mut rng, profile.decode_range).max(1),
                deadline_ticks: profile.deadline_ticks,
            });
        }
        out
    }

    /// Total simulated user population this trace stands for.
    pub fn simulated_users(&self, arrivals: usize) -> u64 {
        self.users_per_request.saturating_mul(arrivals as u64)
    }
}

/// Uniform sample from an inclusive range (degenerate ranges collapse to
/// their lower bound).
fn sample_range(rng: &mut SeededRng, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        lo + rng.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_spec(pattern: ArrivalPattern) -> TrafficSpec {
        TrafficSpec {
            base_rate_per_tick: 2.0,
            pattern,
            horizon_ticks: 400,
            tenants: vec![
                TenantTraffic::interactive(0.75, 40),
                TenantTraffic::batch(0.25),
            ],
            users_per_request: 10_000,
        }
    }

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = two_tenant_spec(ArrivalPattern::Steady);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].tick <= w[1].tick));
        assert!(a.iter().all(|r| r.tick < spec.horizon_ticks));
        assert_ne!(a, spec.generate(8), "different seeds should differ");
    }

    #[test]
    fn tenant_shares_are_respected() {
        let spec = two_tenant_spec(ArrivalPattern::Steady);
        let trace = spec.generate(3);
        let interactive = trace.iter().filter(|r| r.tenant == 0).count() as f64;
        let frac = interactive / trace.len() as f64;
        assert!((0.6..0.9).contains(&frac), "share {frac} far from 0.75");
        // Interactive requests carry deadlines, batch requests do not.
        assert!(trace
            .iter()
            .all(|r| (r.tenant == 0) == r.deadline_ticks.is_some()));
    }

    #[test]
    fn lengths_stay_in_tenant_bands() {
        let spec = two_tenant_spec(ArrivalPattern::Steady);
        for r in spec.generate(4) {
            let Some(t) = spec.tenants.get(r.tenant) else {
                panic!("tenant index out of range")
            };
            assert!((t.prefill_range.0..=t.prefill_range.1).contains(&r.prefill_tokens));
            assert!((t.decode_range.0..=t.decode_range.1).contains(&r.decode_tokens));
        }
    }

    #[test]
    fn diurnal_pattern_modulates_rate() {
        let pattern = ArrivalPattern::Diurnal {
            period_ticks: 200,
            peak_to_trough: 3.0,
        };
        let spec = two_tenant_spec(pattern);
        let trace = spec.generate(5);
        // First quarter of the cycle sits near the peak, third quarter near
        // the trough: the arrival counts must reflect the swing.
        let count_in = |lo: u64, hi: u64| trace.iter().filter(|r| (lo..hi).contains(&r.tick)).count();
        let peak_quarter = count_in(0, 100) + count_in(200, 300);
        let trough_quarter = count_in(100, 200) + count_in(300, 400);
        assert!(
            peak_quarter as f64 > trough_quarter as f64 * 1.5,
            "peak {peak_quarter} vs trough {trough_quarter}"
        );
    }

    #[test]
    fn bursty_pattern_goes_quiet_between_bursts() {
        let spec = two_tenant_spec(ArrivalPattern::Bursty {
            on_ticks: 50,
            off_ticks: 50,
        });
        let trace = spec.generate(6);
        let on = trace.iter().filter(|r| r.tick % 100 < 50).count();
        let off = trace.len() - on;
        assert!(on as f64 > off as f64 * 4.0, "on {on} vs off {off}");
    }

    #[test]
    fn flash_crowd_spikes_then_decays() {
        let spec = two_tenant_spec(ArrivalPattern::FlashCrowd {
            at_tick: 200,
            magnitude: 8.0,
            decay_ticks: 40,
        });
        let trace = spec.generate(9);
        let count_in = |lo: u64, hi: u64| trace.iter().filter(|r| (lo..hi).contains(&r.tick)).count();
        let before = count_in(100, 200);
        let spike = count_in(200, 240);
        let tail = count_in(320, 400);
        assert!(spike > before, "spike window {spike} vs baseline {before}");
        // After several decay constants the rate is back near baseline
        // (window is 80 ticks vs the spike's 40, hence the factor 3 bound).
        assert!(tail < spike * 3, "tail {tail} vs spike {spike}");
    }

    #[test]
    fn degenerate_specs_yield_empty_traces() {
        let mut spec = two_tenant_spec(ArrivalPattern::Steady);
        spec.tenants.clear();
        assert!(spec.generate(1).is_empty());
        let mut spec = two_tenant_spec(ArrivalPattern::Steady);
        spec.base_rate_per_tick = 0.0;
        assert!(spec.generate(1).is_empty());
        let mut spec = two_tenant_spec(ArrivalPattern::Steady);
        spec.horizon_ticks = 0;
        assert!(spec.generate(1).is_empty());
    }

    #[test]
    fn simulated_users_scale() {
        let spec = two_tenant_spec(ArrivalPattern::Steady);
        let n = spec.generate(2).len();
        assert_eq!(spec.simulated_users(n), n as u64 * 10_000);
    }
}
