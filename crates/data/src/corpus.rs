//! Stochastic-grammar corpora standing in for WikiText2, PTB, and C4.
//!
//! Each corpus style draws sentences from a probabilistic grammar over a
//! shared [`lexicon`]: a fixed table of entities with classes and
//! characteristic actions. The grammars differ in framing (encyclopedic
//! prose, financial newswire, web mix), which gives the three "datasets"
//! genuinely different token statistics — like the perplexity spread between
//! WikiText2, PTB, and C4 in the paper — while the underlying facts stay
//! consistent so the zero-shot tasks in [`crate::tasks`] are learnable from
//! any of them.

use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Shared entity/fact tables used by corpora and zero-shot tasks.
pub mod lexicon {
    /// One entity: surface form, class noun, characteristic action phrase,
    /// and the tool-use purpose for affordance tasks (empty when
    /// inapplicable).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Entity {
        /// Surface form, e.g. `"robin"`.
        pub name: &'static str,
        /// Class noun, e.g. `"bird"`.
        pub class: &'static str,
        /// Characteristic action, e.g. `"sings at dawn"`.
        pub action: &'static str,
        /// Purpose for affordance tasks, e.g. `"strike a nail"`.
        pub purpose: &'static str,
    }

    /// Animals, instruments, tools, vehicles, places — enough classes that
    /// wrong options are plausible but learnably wrong.
    pub const ENTITIES: &[Entity] = &[
        Entity { name: "robin", class: "bird", action: "sings at dawn", purpose: "" },
        Entity { name: "falcon", class: "bird", action: "hunts from the sky", purpose: "" },
        Entity { name: "heron", class: "bird", action: "wades in shallow water", purpose: "" },
        Entity { name: "salmon", class: "fish", action: "swims upstream", purpose: "" },
        Entity { name: "trout", class: "fish", action: "hides under stones", purpose: "" },
        Entity { name: "shark", class: "fish", action: "patrols the reef", purpose: "" },
        Entity { name: "wolf", class: "mammal", action: "howls at night", purpose: "" },
        Entity { name: "otter", class: "mammal", action: "floats on its back", purpose: "" },
        Entity { name: "badger", class: "mammal", action: "digs deep burrows", purpose: "" },
        Entity { name: "hammer", class: "tool", action: "drives nails into wood", purpose: "strike a nail" },
        Entity { name: "saw", class: "tool", action: "cuts planks to length", purpose: "cut a plank" },
        Entity { name: "chisel", class: "tool", action: "shaves thin curls of wood", purpose: "carve a joint" },
        Entity { name: "wrench", class: "tool", action: "turns stubborn bolts", purpose: "loosen a bolt" },
        Entity { name: "violin", class: "instrument", action: "plays a high melody", purpose: "play a melody" },
        Entity { name: "cello", class: "instrument", action: "hums a low line", purpose: "play a bass line" },
        Entity { name: "drum", class: "instrument", action: "keeps a steady beat", purpose: "keep the beat" },
        Entity { name: "flute", class: "instrument", action: "whistles a bright tune", purpose: "play a bright tune" },
        Entity { name: "barge", class: "vessel", action: "carries grain down the river", purpose: "move heavy cargo" },
        Entity { name: "sloop", class: "vessel", action: "leans into the wind", purpose: "sail the bay" },
        Entity { name: "ferry", class: "vessel", action: "crosses the strait each hour", purpose: "cross the strait" },
        Entity { name: "mill", class: "building", action: "grinds wheat into flour", purpose: "" },
        Entity { name: "forge", class: "building", action: "glows with hot iron", purpose: "" },
        Entity { name: "granary", class: "building", action: "stores the autumn harvest", purpose: "" },
        Entity { name: "lighthouse", class: "building", action: "warns ships off the rocks", purpose: "" },
    ];

    /// Adjectives used as filler modifiers.
    pub const ADJECTIVES: &[&str] = &[
        "old", "small", "grey", "quiet", "busy", "narrow", "famous", "common", "northern",
        "wooden", "heavy", "swift", "patient", "careful", "bright",
    ];

    /// Place names for prose variety.
    pub const PLACES: &[&str] = &[
        "the valley", "the harbor", "the north field", "the old town", "the river bend",
        "the market square", "the east ridge", "the lower meadow",
    ];

    /// Company-ish names for the PTB-style newswire.
    pub const FIRMS: &[&str] = &[
        "harbor freight group", "north mills corp", "granary holdings", "ridge line partners",
        "blue heron logistics", "ferry lane industries", "forge works inc", "meadow grain co",
    ];

    /// Quarter names for the newswire.
    pub const QUARTERS: &[&str] = &["the first quarter", "the second quarter", "the third quarter", "the fourth quarter"];

    /// Looks up an entity by name.
    pub fn entity(name: &str) -> Option<&'static Entity> {
        ENTITIES.iter().find(|e| e.name == name)
    }

    /// All distinct class nouns, in first-appearance order.
    pub fn classes() -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for e in ENTITIES {
            if !out.contains(&e.class) {
                out.push(e.class);
            }
        }
        out
    }
}

/// Which synthetic corpus to generate; each stands in for one of the paper's
/// perplexity datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorpusStyle {
    /// Encyclopedic prose with section headings (WikiText2 stand-in).
    Wiki,
    /// Financial newswire with numbers and firm names (PTB stand-in).
    Ptb,
    /// Mixed web text: questions, imperatives, lists (C4 stand-in).
    C4,
}

impl CorpusStyle {
    /// All styles in paper order.
    pub fn all() -> [CorpusStyle; 3] {
        [CorpusStyle::Wiki, CorpusStyle::Ptb, CorpusStyle::C4]
    }

    /// Short dataset label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            CorpusStyle::Wiki => "wiki",
            CorpusStyle::Ptb => "ptb",
            CorpusStyle::C4 => "c4",
        }
    }
}

impl std::fmt::Display for CorpusStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A generated corpus with its style and seed.
///
/// # Example
///
/// ```
/// use atom_data::{Corpus, CorpusStyle};
///
/// let c = Corpus::generate(CorpusStyle::Ptb, 5_000, 1);
/// assert!(c.text().len() >= 5_000);
/// let (train, valid) = c.split(0.9);
/// assert!(train.len() > valid.len());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    style: CorpusStyle,
    seed: u64,
    text: String,
}

impl Corpus {
    /// Generates at least `target_chars` characters of `style` text from
    /// `seed`.
    pub fn generate(style: CorpusStyle, target_chars: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed ^ 0xA70A_D474 ^ (style as u64) << 32);
        let mut text = String::with_capacity(target_chars + 256);
        let mut gen = SentenceGen::new(style);
        while text.len() < target_chars {
            gen.emit_block(&mut rng, &mut text);
        }
        Corpus { style, seed, text }
    }

    /// The corpus style.
    pub fn style(&self) -> CorpusStyle {
        self.style
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Splits into `(train, validation)` at the sentence boundary closest to
    /// `train_frac` of the text.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not in `(0, 1)`.
    pub fn split(&self, train_frac: f64) -> (&str, &str) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        let target = (self.text.len() as f64 * train_frac) as usize;
        // Find the next sentence end at or after target.
        let boundary = self.text[target.min(self.text.len())..]
            .find(". ")
            .map(|i| target + i + 2)
            .unwrap_or(self.text.len());
        self.text.split_at(boundary)
    }

    /// Samples `n` random sentences for quantization calibration, mirroring
    /// the paper's "128 randomly sampled sentences from WikiText2" (§5.1).
    pub fn calibration_sentences(&self, n: usize, seed: u64) -> Vec<String> {
        let sentences: Vec<&str> = self
            .text
            .split_inclusive(". ")
            .filter(|s| s.len() > 16)
            .collect();
        let mut rng = SeededRng::new(seed ^ 0xCA11_B8A7);
        (0..n)
            .map(|_| sentences[rng.below(sentences.len().max(1))].to_string())
            .collect()
    }
}

/// Internal sentence generator; one per corpus.
struct SentenceGen {
    style: CorpusStyle,
}

impl SentenceGen {
    fn new(style: CorpusStyle) -> Self {
        SentenceGen { style }
    }

    /// Emits one block (a heading + paragraph, a news item, or a web snippet).
    fn emit_block(&mut self, rng: &mut SeededRng, out: &mut String) {
        match self.style {
            CorpusStyle::Wiki => self.wiki_block(rng, out),
            CorpusStyle::Ptb => self.ptb_block(rng, out),
            CorpusStyle::C4 => self.c4_block(rng, out),
        }
    }

    fn pick_entity(&self, rng: &mut SeededRng) -> &'static lexicon::Entity {
        // Mildly skewed weighting: natural text is Zipfian, but the tail
        // must stay frequent enough that a small model can learn *every*
        // entity's facts (the zero-shot tasks sample entities uniformly).
        let n = lexicon::ENTITIES.len();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).sqrt()).collect();
        &lexicon::ENTITIES[rng.weighted_index(&weights)]
    }

    fn adjective(&self, rng: &mut SeededRng) -> &'static str {
        lexicon::ADJECTIVES[rng.below(lexicon::ADJECTIVES.len())]
    }

    fn place(&self, rng: &mut SeededRng) -> &'static str {
        lexicon::PLACES[rng.below(lexicon::PLACES.len())]
    }

    /// Core fact sentences shared by all styles so zero-shot tasks are
    /// learnable from any corpus. `about` pins the subject (wiki blocks
    /// pass their topic entity so each article actually teaches its topic).
    fn fact_sentences(&self, rng: &mut SeededRng, out: &mut String, about: Option<&'static lexicon::Entity>) {
        let e = about.unwrap_or_else(|| self.pick_entity(rng));
        match rng.below(5) {
            0 => {
                out.push_str(&format!("the {} is a {} . ", e.name, e.class));
            }
            1 => {
                out.push_str(&format!("the {} {} . ", e.name, e.action));
            }
            2 => {
                // BoolQ-style q/a pairs, both polarities.
                let truthy = rng.below(2) == 0;
                let class = if truthy {
                    e.class
                } else {
                    let classes = lexicon::classes();
                    let mut other = classes[rng.below(classes.len())];
                    while other == e.class {
                        other = classes[rng.below(classes.len())];
                    }
                    other
                };
                let ans = if truthy { "yes" } else { "no" };
                out.push_str(&format!("is the {} a {} ? {} . ", e.name, class, ans));
            }
            3 => {
                if !e.purpose.is_empty() {
                    out.push_str(&format!("to {} , use the {} . ", e.purpose, e.name));
                } else {
                    out.push_str(&format!(
                        "the {} {} is a {} . ",
                        self.adjective(rng),
                        e.name,
                        e.class
                    ));
                }
            }
            _ => {
                // Number agreement pairs (WinoGrande-style signal): plural
                // subjects take the bare verb form.
                let verb = e.action.split(' ').next().unwrap_or("stands");
                let plural = plural_of(verb);
                out.push_str(&format!(
                    "one {} {} while two {}s {} . ",
                    e.name, verb, e.name, plural
                ));
            }
        }
    }

    fn wiki_block(&mut self, rng: &mut SeededRng, out: &mut String) {
        let e = self.pick_entity(rng);
        out.push_str(&format!("= the {} =\n", e.name));
        let sentences = 5 + rng.below(5);
        for _ in 0..sentences {
            match rng.below(5) {
                // Half the sentences teach facts, mostly about the topic.
                0 | 1 => {
                    let about = if rng.below(10) < 7 { Some(e) } else { None };
                    self.fact_sentences(rng, out, about);
                }
                2 => out.push_str(&format!(
                    "the {} {} is found near {} . ",
                    self.adjective(rng),
                    e.name,
                    self.place(rng)
                )),
                3 => out.push_str(&format!(
                    "early records describe the {} as a {} {} . ",
                    e.name,
                    self.adjective(rng),
                    e.class
                )),
                _ => {
                    let e2 = self.pick_entity(rng);
                    out.push_str(&format!(
                        "unlike the {} , the {} {} . ",
                        e2.name, e.name, e.action
                    ));
                }
            }
        }
        out.push('\n');
    }

    fn ptb_block(&mut self, rng: &mut SeededRng, out: &mut String) {
        let firm = lexicon::FIRMS[rng.below(lexicon::FIRMS.len())];
        let q = lexicon::QUARTERS[rng.below(lexicon::QUARTERS.len())];
        let n = 5 + rng.below(95);
        match rng.below(4) {
            0 => out.push_str(&format!(
                "{} said it expects {} million in revenue for {} . ",
                firm, n, q
            )),
            1 => out.push_str(&format!(
                "analysts at {} raised estimates by {} percent . ",
                firm, n
            )),
            2 => {
                let e = self.pick_entity(rng);
                out.push_str(&format!(
                    "{} shipped {} {} units in {} . ",
                    firm, n, e.name, q
                ));
            }
            _ => self.fact_sentences(rng, out, None),
        }
        if rng.below(6) == 0 {
            out.push('\n');
        }
    }

    fn c4_block(&mut self, rng: &mut SeededRng, out: &mut String) {
        match rng.below(5) {
            0 => {
                let e = self.pick_entity(rng);
                out.push_str(&format!(
                    "click here to learn more about the {} and other {}s . ",
                    e.name, e.class
                ));
            }
            1 => {
                let e = self.pick_entity(rng);
                out.push_str(&format!(
                    "top {} picks :\n- the {} {}\n- the {} {}\n",
                    e.class,
                    self.adjective(rng),
                    e.name,
                    self.adjective(rng),
                    e.name
                ));
            }
            2 => {
                let e = self.pick_entity(rng);
                out.push_str(&format!("what does the {} do ? it {} . ", e.name, e.action));
            }
            _ => self.fact_sentences(rng, out, None),
        }
    }
}

/// Third-person-singular to plural verb form, exposed for the agreement
/// task in [`crate::tasks`] so task answers match corpus usage exactly.
pub fn plural_for_tasks(verb: &str) -> String {
    plural_of(verb)
}

/// Third-person-singular to plural verb form ("sings" -> "sing").
fn plural_of(verb: &str) -> String {
    if let Some(stripped) = verb.strip_suffix("ies") {
        format!("{stripped}y")
    } else if let Some(stripped) = verb.strip_suffix('s') {
        stripped.to_string()
    } else {
        verb.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_reaches_target_length() {
        for style in CorpusStyle::all() {
            let c = Corpus::generate(style, 10_000, 3);
            assert!(c.text().len() >= 10_000, "{style} too short");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate(CorpusStyle::Wiki, 2_000, 9);
        let b = Corpus::generate(CorpusStyle::Wiki, 2_000, 9);
        assert_eq!(a.text(), b.text());
        let c = Corpus::generate(CorpusStyle::Wiki, 2_000, 10);
        assert_ne!(a.text(), c.text());
    }

    #[test]
    fn styles_differ() {
        let w = Corpus::generate(CorpusStyle::Wiki, 2_000, 1);
        let p = Corpus::generate(CorpusStyle::Ptb, 2_000, 1);
        assert_ne!(w.text(), p.text());
        assert!(w.text().contains("= the"));
        assert!(p.text().contains("million"));
    }

    #[test]
    fn split_is_clean() {
        let c = Corpus::generate(CorpusStyle::C4, 8_000, 2);
        let (train, valid) = c.split(0.9);
        assert_eq!(train.len() + valid.len(), c.text().len());
        assert!(train.len() > 6 * valid.len());
        assert!(train.ends_with(". ") || valid.is_empty());
    }

    #[test]
    fn calibration_sentences_sampled() {
        let c = Corpus::generate(CorpusStyle::Wiki, 20_000, 4);
        let sents = c.calibration_sentences(128, 7);
        assert_eq!(sents.len(), 128);
        assert!(sents.iter().all(|s| s.len() > 16));
        // Deterministic resampling.
        assert_eq!(sents, c.calibration_sentences(128, 7));
    }

    #[test]
    fn text_is_in_vocabulary() {
        let tok = crate::Tokenizer::new();
        for style in CorpusStyle::all() {
            let c = Corpus::generate(style, 5_000, 5);
            assert_eq!(tok.decode(&tok.encode(c.text())), c.text());
        }
    }

    #[test]
    fn lexicon_lookup() {
        let e = lexicon::entity("hammer").unwrap();
        assert_eq!(e.class, "tool");
        assert!(lexicon::entity("nonesuch").is_none());
        assert!(lexicon::classes().len() >= 5);
    }

    #[test]
    fn plural_of_verbs() {
        assert_eq!(plural_of("sings"), "sing");
        assert_eq!(plural_of("carries"), "carry");
        assert_eq!(plural_of("run"), "run");
    }
}
