//! Synthetic data substrate for the Atom reproduction.
//!
//! The paper evaluates on WikiText2 / PTB / C4 perplexity, six lm-eval
//! zero-shot tasks, and a ShareGPT-derived serving workload. None of those
//! assets can ship with this repository, so this crate builds the closest
//! synthetic equivalents (see DESIGN.md §1 for the substitution rationale):
//!
//! - [`tokenizer`] — a deterministic character-level tokenizer with a fixed
//!   96-symbol vocabulary.
//! - [`corpus`] — three stochastic-grammar corpora with distinct styles
//!   standing in for WikiText2 ("wiki"), PTB ("ptb"), and C4 ("c4"), plus
//!   train/validation splits and calibration samplers.
//! - [`tasks`] — six likelihood-scored cloze/classification tasks standing in
//!   for PIQA, ARC-e, ARC-c, BoolQ, HellaSwag, and WinoGrande.
//! - [`workload`] — a ShareGPT-like request-length and arrival model for the
//!   end-to-end serving experiments (Fig. 10).
//! - [`traffic`] — open-loop multi-tenant arrival traces (diurnal, bursty,
//!   flash-crowd) at simulated millions-of-users scale for the gateway's
//!   overload and SLO experiments.
//! - [`scenario`] — prompt-level content models (shared system prompts,
//!   multi-turn conversations, long-context documents) layered on traffic
//!   traces for the prefix-cache experiments.
//!
//! Everything is seeded and exactly reproducible.
//!
//! # Example
//!
//! ```
//! use atom_data::{Corpus, CorpusStyle, Tokenizer};
//!
//! let corpus = Corpus::generate(CorpusStyle::Wiki, 2_000, 7);
//! let tok = Tokenizer::new();
//! let ids = tok.encode(corpus.text());
//! assert!(ids.len() >= 1_000);
//! assert_eq!(tok.decode(&ids), corpus.text());
//! ```

#![forbid(unsafe_code)]
pub mod corpus;
pub mod scenario;
pub mod tasks;
pub mod tokenizer;
pub mod traffic;
pub mod workload;

pub use corpus::{Corpus, CorpusStyle};
pub use scenario::{PromptArrival, ScenarioKind, ScenarioSpec};
pub use tasks::{Task, TaskKind, TaskSuite};
pub use tokenizer::Tokenizer;
pub use traffic::{Arrival, ArrivalPattern, TenantTraffic, TrafficSpec};
pub use workload::{Request, WorkloadSpec};
