//! Character-level tokenizer with a fixed 96-symbol vocabulary.
//!
//! The vocabulary covers the printable ASCII range (space through `~`) plus
//! newline. Characters outside the vocabulary are replaced with `?` so
//! `encode` never fails and the token-id range is statically known, which
//! keeps the model-embedding shapes independent of corpus content.

use serde::{Deserialize, Serialize};

/// Token id produced by [`Tokenizer`].
pub type TokenId = u16;

/// Fixed-vocabulary character tokenizer.
///
/// # Example
///
/// ```
/// use atom_data::Tokenizer;
///
/// let tok = Tokenizer::new();
/// let ids = tok.encode("hi!\n");
/// assert_eq!(ids.len(), 4);
/// assert_eq!(tok.decode(&ids), "hi!\n");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tokenizer {
    _priv: (),
}

/// Number of printable-ASCII symbols (space..=`~`).
const PRINTABLE: usize = 95;
/// Id assigned to newline.
const NEWLINE_ID: TokenId = PRINTABLE as TokenId;

impl Tokenizer {
    /// Creates the tokenizer. All instances are identical.
    pub fn new() -> Self {
        Tokenizer { _priv: () }
    }

    /// Vocabulary size (96: printable ASCII plus newline).
    pub fn vocab_size(&self) -> usize {
        PRINTABLE + 1
    }

    /// Encodes text to token ids; out-of-vocabulary characters become `?`.
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        text.chars().map(|c| self.encode_char(c)).collect()
    }

    /// Encodes one character.
    pub fn encode_char(&self, c: char) -> TokenId {
        match c {
            '\n' => NEWLINE_ID,
            ' '..='~' => (c as u32 - ' ' as u32) as TokenId,
            _ => ('?' as u32 - ' ' as u32) as TokenId,
        }
    }

    /// Decodes token ids back to text.
    ///
    /// Ids outside the vocabulary decode to `?` (decoding never fails, so a
    /// sampling loop over raw logits cannot crash the server).
    pub fn decode(&self, ids: &[TokenId]) -> String {
        ids.iter().map(|&id| self.decode_token(id)).collect()
    }

    /// Decodes one token id.
    pub fn decode_token(&self, id: TokenId) -> char {
        if id == NEWLINE_ID {
            '\n'
        } else if (id as usize) < PRINTABLE {
            char::from_u32(' ' as u32 + id as u32).unwrap_or('?')
        } else {
            '?'
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_printable() {
        let tok = Tokenizer::new();
        let text = "The quick brown fox! 0123456789 ~@#$%\n";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn vocab_size_is_96() {
        assert_eq!(Tokenizer::new().vocab_size(), 96);
    }

    #[test]
    fn all_ids_in_range() {
        let tok = Tokenizer::new();
        for id in tok.encode("hello\nworld ~") {
            assert!((id as usize) < tok.vocab_size());
        }
    }

    #[test]
    fn oov_becomes_question_mark() {
        let tok = Tokenizer::new();
        assert_eq!(tok.decode(&tok.encode("héllo")), "h?llo");
        assert_eq!(tok.decode_token(999), '?');
    }

    #[test]
    fn every_vocab_id_roundtrips() {
        let tok = Tokenizer::new();
        for id in 0..tok.vocab_size() as TokenId {
            let c = tok.decode_token(id);
            assert_eq!(tok.encode_char(c), id);
        }
    }
}
