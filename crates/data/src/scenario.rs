//! Prompt-level serving scenarios over [`traffic`](crate::traffic) traces.
//!
//! The gateway experiments replay [`Arrival`]s that only carry *lengths*;
//! the prefix-cache experiments need actual token content, because cache
//! hits are decided by prompt bytes. A [`ScenarioSpec`] compiles a
//! [`TrafficSpec`] plus a content [`ScenarioKind`] into a deterministic
//! trace of [`PromptArrival`]s — the arrival schedule stays exactly the
//! traffic model's; only the prompts are synthesized:
//!
//! - [`ScenarioKind::SharedPrefix`] — a small pool of system prompts shared
//!   by every request (the millions-of-users chat-assistant shape that
//!   makes radix prefix caching pay);
//! - [`ScenarioKind::MultiTurn`] — conversations whose every turn resends
//!   the full history, so each turn's prompt extends the previous one;
//! - [`ScenarioKind::LongContext`] — a few long documents queried many
//!   times with short distinct questions.
//!
//! All token ids stay inside the 96-symbol vocabulary of
//! [`Tokenizer`](crate::Tokenizer)-compatible models, and everything is a
//! pure function of spec and seed.

use crate::traffic::{Arrival, TrafficSpec};
use atom_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Vocabulary bound for synthesized prompt tokens (the zoo models embed a
/// fixed 96-symbol vocabulary).
const VOCAB: u16 = 96;

/// One arrival with concrete prompt content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptArrival {
    /// The underlying traffic arrival (tick, tenant, lengths, deadline).
    /// `arrival.prefill_tokens` always equals `prompt.len()`.
    pub arrival: Arrival,
    /// The prompt token ids.
    pub prompt: Vec<u16>,
}

/// How prompt content is synthesized on top of the arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Every request starts with one of `prefixes` fixed system prompts of
    /// `prefix_tokens` tokens, followed by a unique user suffix. Prefix
    /// popularity is linearly skewed (pool entry 0 is hottest).
    SharedPrefix {
        /// Number of distinct system prompts.
        prefixes: usize,
        /// Length of each system prompt in tokens.
        prefix_tokens: usize,
    },
    /// Requests are grouped into conversations of `turns` turns; each turn
    /// resends the whole history plus `followup_tokens` fresh tokens, and
    /// lands `turn_gap_ticks` after the previous turn.
    MultiTurn {
        /// Turns per conversation (>= 1).
        turns: usize,
        /// Ticks between consecutive turns of one conversation.
        turn_gap_ticks: u64,
        /// Fresh tokens appended per follow-up turn.
        followup_tokens: usize,
    },
    /// Every request quotes one of `documents` long documents of
    /// `document_tokens` tokens and appends a short unique question.
    LongContext {
        /// Number of distinct documents.
        documents: usize,
        /// Length of each document in tokens.
        document_tokens: usize,
    },
}

/// A complete prompt-level scenario: arrival schedule plus content model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Arrival schedule (rates, tenants, pattern, horizon).
    pub traffic: TrafficSpec,
    /// Prompt content model layered on the schedule.
    pub kind: ScenarioKind,
}

impl ScenarioSpec {
    /// Generates the deterministic prompt trace for `seed`, sorted by tick.
    ///
    /// The arrival schedule is exactly `self.traffic.generate(seed)`; the
    /// content model then rewrites each arrival's prompt (and therefore its
    /// `prefill_tokens`) to match the scenario's sharing structure. Decode
    /// lengths and deadlines pass through untouched.
    pub fn generate(&self, seed: u64) -> Vec<PromptArrival> {
        let arrivals = self.traffic.generate(seed);
        let mut rng = SeededRng::new(seed ^ 0x5CE9_A210);
        match self.kind {
            ScenarioKind::SharedPrefix {
                prefixes,
                prefix_tokens,
            } => shared_prefix(&arrivals, prefixes, prefix_tokens, &mut rng),
            ScenarioKind::MultiTurn {
                turns,
                turn_gap_ticks,
                followup_tokens,
            } => multi_turn(
                &arrivals,
                turns.max(1),
                turn_gap_ticks,
                followup_tokens.max(1),
                &mut rng,
                self.traffic.horizon_ticks,
            ),
            ScenarioKind::LongContext {
                documents,
                document_tokens,
            } => shared_prefix(&arrivals, documents, document_tokens, &mut rng),
        }
    }
}

/// A fixed pseudo-random token stream for pool entry `which`: deterministic
/// in `which` alone so every request quoting the same entry gets identical
/// bytes.
fn pool_entry(which: usize, tokens: usize) -> Vec<u16> {
    let mut rng = SeededRng::new(0x00D0_C5EED ^ (which as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..tokens).map(|_| atom_tensor::cast::usize_to_u16_saturating(rng.below(VOCAB as usize))).collect()
}

/// Linearly skewed pool pick: entry 0 has weight `n`, entry `n-1` weight 1.
fn skewed_pick(rng: &mut SeededRng, n: usize) -> usize {
    let total = n * (n + 1) / 2;
    let mut ticket = rng.below(total.max(1));
    for entry in 0..n {
        let weight = n - entry;
        if ticket < weight {
            return entry;
        }
        ticket -= weight;
    }
    0
}

fn shared_prefix(
    arrivals: &[Arrival],
    pool: usize,
    prefix_tokens: usize,
    rng: &mut SeededRng,
) -> Vec<PromptArrival> {
    let pool = pool.max(1);
    let prefix_tokens = prefix_tokens.max(1);
    let prefixes: Vec<Vec<u16>> = (0..pool).map(|i| pool_entry(i, prefix_tokens)).collect();
    arrivals
        .iter()
        .map(|a| {
            let which = skewed_pick(rng, pool);
            let mut prompt = prefixes.get(which).cloned().unwrap_or_default();
            // The suffix keeps the arrival's own prompt length so tenant
            // length bands still shape the unique part.
            for _ in 0..a.prefill_tokens.max(1) {
                prompt.push(atom_tensor::cast::usize_to_u16_saturating(rng.below(VOCAB as usize)));
            }
            let mut arrival = *a;
            arrival.prefill_tokens = prompt.len();
            PromptArrival { arrival, prompt }
        })
        .collect()
}

fn multi_turn(
    arrivals: &[Arrival],
    turns: usize,
    turn_gap_ticks: u64,
    followup_tokens: usize,
    rng: &mut SeededRng,
    horizon: u64,
) -> Vec<PromptArrival> {
    let mut out = Vec::new();
    for a in arrivals {
        // Turn 1 is the arrival's own prompt; later turns resend the whole
        // history plus a fresh follow-up, prefix-extending the previous
        // prompt — exactly the multi-turn chat shape prefix caching serves.
        let mut history: Vec<u16> = (0..a.prefill_tokens.max(1))
            .map(|_| atom_tensor::cast::usize_to_u16_saturating(rng.below(VOCAB as usize)))
            .collect();
        for turn in 0..turns {
            let tick = a.tick + turn_gap_ticks.saturating_mul(turn as u64);
            if turn > 0 && tick >= horizon {
                break;
            }
            if turn > 0 {
                for _ in 0..followup_tokens {
                    history.push(atom_tensor::cast::usize_to_u16_saturating(rng.below(VOCAB as usize)));
                }
            }
            let mut arrival = *a;
            arrival.tick = tick;
            arrival.prefill_tokens = history.len();
            out.push(PromptArrival {
                arrival,
                prompt: history.clone(),
            });
        }
    }
    // Interleave conversations back into tick order; the sort is stable so
    // same-tick arrivals keep their generation order.
    out.sort_by_key(|p| p.arrival.tick);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{ArrivalPattern, TenantTraffic};

    fn spec(kind: ScenarioKind) -> ScenarioSpec {
        ScenarioSpec {
            traffic: TrafficSpec {
                base_rate_per_tick: 1.0,
                pattern: ArrivalPattern::Steady,
                horizon_ticks: 200,
                tenants: vec![TenantTraffic::interactive(1.0, 50)],
                users_per_request: 1_000,
            },
            kind,
        }
    }

    #[test]
    fn shared_prefix_traces_share_and_replay() {
        let s = spec(ScenarioKind::SharedPrefix {
            prefixes: 2,
            prefix_tokens: 32,
        });
        let a = s.generate(7);
        assert_eq!(a, s.generate(7), "bit-identical replay");
        assert!(!a.is_empty());
        for p in &a {
            assert_eq!(p.arrival.prefill_tokens, p.prompt.len());
            assert!(p.prompt.len() > 32, "prefix plus a unique suffix");
            assert!(p.prompt.iter().all(|&t| t < VOCAB));
        }
        // Every request starts with one of exactly two 32-token prefixes.
        let mut heads: Vec<Vec<u16>> = a.iter().map(|p| p.prompt[..32].to_vec()).collect();
        heads.sort();
        heads.dedup();
        assert_eq!(heads.len(), 2, "two distinct system prompts");
        // The skew makes pool entry 0 the hotter prefix.
        let zero = pool_entry(0, 32);
        let hot = a.iter().filter(|p| p.prompt[..32] == zero[..]).count();
        assert!(hot * 2 > a.len(), "hottest prefix covers most requests");
    }

    #[test]
    fn multi_turn_prompts_extend_prefixwise() {
        let s = spec(ScenarioKind::MultiTurn {
            turns: 3,
            turn_gap_ticks: 10,
            followup_tokens: 6,
        });
        let trace = s.generate(9);
        assert_eq!(trace, s.generate(9));
        assert!(trace
            .windows(2)
            .all(|w| w[0].arrival.tick <= w[1].arrival.tick));
        // Group by conversation: turns of one conversation share the first
        // turn's prompt as a strict prefix.
        let firsts: Vec<&PromptArrival> = trace
            .iter()
            .filter(|p| p.prompt.len() == p.arrival.prefill_tokens && p.arrival.tick < 10)
            .collect();
        assert!(!firsts.is_empty());
        let mut extended = 0;
        for first in &firsts {
            for later in &trace {
                if later.prompt.len() > first.prompt.len()
                    && later.prompt[..first.prompt.len()] == first.prompt[..]
                {
                    extended += 1;
                    break;
                }
            }
        }
        assert!(extended > 0, "later turns extend earlier prompts");
    }

    #[test]
    fn long_context_documents_are_shared() {
        let s = spec(ScenarioKind::LongContext {
            documents: 1,
            document_tokens: 64,
        });
        let trace = s.generate(3);
        assert!(!trace.is_empty());
        let doc = pool_entry(0, 64);
        for p in &trace {
            assert_eq!(&p.prompt[..64], &doc[..], "all requests quote the document");
            assert!(p.prompt.len() > 64, "each adds a unique question");
        }
    }
}
