//! Offline stand-in for the `serde_derive` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and result
//! structs but never serializes them through a serde format crate (results
//! are written with hand-rolled JSON in `atom-bench`). These derives
//! therefore emit no code; the vendored `serde` crate provides blanket
//! implementations of the marker traits so bounds still hold.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
