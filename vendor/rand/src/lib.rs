//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no network access and no
//! crates.io registry, so the external `rand` dependency is replaced (via
//! `[patch.crates-io]`) with this vendored implementation. It provides the
//! subset of the rand 0.8 API the workspace uses — `StdRng`, `SeedableRng`,
//! `RngCore`, and `Rng::{gen, gen_range}` — backed by xoshiro256++ with
//! SplitMix64 seeding. Streams are deterministic and stable across
//! platforms, which is all the reproduction requires; they are *not*
//! bit-compatible with upstream rand's ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values sampleable uniformly from the generator's raw bits (stand-in for
/// `rand::distributions::Standard` sampling via `Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 significant bits, uniform in [0, 1) — matches rand's precision
        // choice for f32.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of a standard-sampleable type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`
    /// stand-in).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_streams() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(1);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut c = StdRng::seed_from_u64(2);
            assert_ne!(a.next_u64(), c.next_u64());
        }

        #[test]
        fn ranges_respected() {
            let mut r = StdRng::seed_from_u64(3);
            for _ in 0..1000 {
                let v: usize = r.gen_range(3..17);
                assert!((3..17).contains(&v));
                let f: f32 = r.gen_range(-2.0f32..0.5);
                assert!((-2.0..0.5).contains(&f));
                let i: usize = r.gen_range(0..=4);
                assert!(i <= 4);
                let u: f32 = r.gen();
                assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn uniform_mean_is_centered() {
            let mut r = StdRng::seed_from_u64(4);
            let mean: f64 =
                (0..20_000).map(|_| r.gen::<f64>()).sum::<f64>() / 20_000.0;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        }
    }
}
