//! The `Strategy` trait, combinators, and range/tuple strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` (subset of
/// `proptest::strategy::Strategy`).
///
/// `generate` returns `None` when a `prop_filter` rejects the drawn value;
/// the runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` if the value was filtered out.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy it
    /// maps to (for dependent inputs, e.g. dims then matching data).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing the predicate; `whence` labels the
    /// filter in exhaustion errors.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::boxed`]: a type-erased, cheaply clonable strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the given value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some((lo as i128 + rng.below(span + 1) as i128) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                Some(self.start + u * (self.end - self.start))
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                Some(($($s.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&v));
            let f = (-2.0f32..4.0).generate(&mut rng).unwrap();
            assert!((-2.0..4.0).contains(&f));
            let i = (0i32..=5).generate(&mut rng).unwrap();
            assert!((0..=5).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| {
                crate::collection::vec(0u32..10, r * c).prop_map(move |v| (r, c, v))
            })
            .prop_filter("non-trivial", |(r, c, _)| r * c > 1);
        let mut rng = TestRng::new(2);
        let mut accepted = 0;
        for _ in 0..200 {
            if let Some((r, c, v)) = strat.generate(&mut rng) {
                assert_eq!(v.len(), r * c);
                assert!(r * c > 1);
                accepted += 1;
            }
        }
        assert!(accepted > 50);
    }
}
