//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a small slice of proptest: the
//! `proptest!` macro, range and tuple strategies, `collection::vec`,
//! `prop_map`/`prop_flat_map`/`prop_filter`, `ProptestConfig::with_cases`,
//! and the `prop_assert*` macros. This crate implements exactly that slice
//! with a deterministic splitmix64-driven runner and **no shrinking**: a
//! failing case panics with the generated inputs' debug output instead of a
//! minimized counterexample. Test semantics (what passes and what fails)
//! are otherwise the same.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests expect (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject,
                                );
                            }
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case fails
/// with the formatted message (no process abort, so the runner can report
/// the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            __l,
                            __r,
                            ::std::format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `(left != right)`\n  both: `{:?}`",
                            __l
                        )),
                    );
                }
            }
        }
    };
}
