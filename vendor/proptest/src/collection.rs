//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Permitted lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = vec(0u64..100, 7usize).generate(&mut rng).unwrap();
            assert_eq!(v.len(), 7);
            let w = vec(0u64..100, 1..4).generate(&mut rng).unwrap();
            assert!((1..4).contains(&w.len()));
        }
    }
}
