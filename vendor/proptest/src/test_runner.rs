//! Deterministic case runner and RNG for the proptest stand-in.

/// How many cases each property runs (subset of `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps whole-engine properties fast
        // while still exercising a meaningful input distribution.
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The strategy (a `prop_filter`) rejected the input; the runner retries
    /// without counting the case.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (input filtered out).
    pub fn reject(_msg: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic splitmix64 generator driving strategy generation.
///
/// Seeded from the test's name so every property gets an independent but
/// reproducible stream; there is no `PROPTEST_SEED`-style perturbation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one property: keeps generating inputs until `config.cases` cases
/// pass, retrying (bounded) on filter rejections and panicking on the first
/// failure.
pub fn run<F>(config: &ProptestConfig, name: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(fnv1a(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = config.cases as u64 * 64 + 1024;
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: strategy rejected {rejected} inputs \
                     before reaching {} passing cases — filter too strict",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed}: {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_counts_cases() {
        let mut calls = 0u32;
        let calls_ptr = std::cell::Cell::new(0u32);
        run(&ProptestConfig::with_cases(10), "counting", |_rng| {
            calls_ptr.set(calls_ptr.get() + 1);
            Ok(())
        });
        calls += calls_ptr.get();
        assert_eq!(calls, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn run_panics_on_failure() {
        run(&ProptestConfig::with_cases(5), "failing", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
