//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the `Distribution` trait plus `Normal` and `LogNormal` — the
//! only distributions this workspace samples — implemented with the
//! Box-Muller transform over the vendored `rand` generator.

use rand::{Rng, RngCore};

/// Types that can draw samples from an RNG (subset of
/// `rand_distr::Distribution`).
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Mean was non-finite.
    MeanTooSmall,
    /// Standard deviation was negative or non-finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Float types Box-Muller sampling is implemented for.
pub trait BoxMullerFloat: Copy {
    /// One standard-normal draw.
    fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// `self * b + c`.
    fn mul_add_(self, b: Self, c: Self) -> Self;
    /// `exp(self)`.
    fn exp_(self) -> Self;
    /// Whether the value is finite.
    fn finite(self) -> bool;
    /// Whether the value is `>= 0`.
    fn non_negative(self) -> bool;
}

macro_rules! box_muller_float {
    ($t:ty) => {
        impl BoxMullerFloat for $t {
            fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Box-Muller: u1 in (0, 1] so ln(u1) is finite.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen::<f64>();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as $t
            }
            fn mul_add_(self, b: Self, c: Self) -> Self {
                self * b + c
            }
            fn exp_(self) -> Self {
                self.exp()
            }
            fn finite(self) -> bool {
                self.is_finite()
            }
            fn non_negative(self) -> bool {
                self >= 0.0
            }
        }
    };
}
box_muller_float!(f32);
box_muller_float!(f64);

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: BoxMullerFloat> Normal<F> {
    /// Creates a normal distribution; errors on negative or non-finite
    /// standard deviation.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !(std_dev.finite() && std_dev.non_negative()) {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: BoxMullerFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::standard_normal(rng).mul_add_(self.std_dev, self.mean)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl<F: BoxMullerFloat> LogNormal<F> {
    /// Creates a log-normal distribution from the parameters of the
    /// underlying normal; errors on negative or non-finite `sigma`.
    pub fn new(mu: F, sigma: F) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: BoxMullerFloat> Distribution<F> for LogNormal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        self.norm.sample(rng).exp_()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(3.0f64, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = LogNormal::new(0.0f64, 1.0).unwrap();
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(LogNormal::new(0.0f64, -0.5).is_err());
    }
}
