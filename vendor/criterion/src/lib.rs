//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion 0.5 the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::default().sample_size`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter` — as a minimal wall-clock harness. Each benchmark is
//! warmed once and then timed for a bounded number of iterations (capped by
//! both `sample_size` and a per-benchmark time budget), printing
//! `group/name[/param] ... mean ns/iter`. There is no statistical analysis,
//! HTML report, or baseline comparison; when run under `cargo test` the
//! same bounded loop keeps bench targets fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget; keeps `cargo test`-driven bench builds
/// from dominating CI.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Top-level harness state (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the iteration count target per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.total.as_nanos() / bencher.iters as u128;
        println!("{label:<60} {mean:>12} ns/iter ({} iters)", bencher.iters);
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then up to `sample_size` timed
    /// iterations bounded by the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Identity function opaque to the optimizer (stand-in for
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function that applies a config and runs targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0u32;
        group.bench_function("inc", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // warm-up + up to sample_size timed iterations
        assert!(calls >= 2);
    }
}
