//! Offline stand-in for the `serde` crate.
//!
//! The workspace only ever writes `use serde::{Deserialize, Serialize}` and
//! derives the pair; no serde data format is in the dependency tree, so the
//! traits here are markers with blanket implementations and the re-exported
//! derives (from the vendored `serde_derive`) expand to nothing. Swapping
//! the real serde back in requires no source changes — only removing the
//! `[patch.crates-io]` entries.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side items (`serde::de`).
pub mod de {
    pub use crate::DeserializeOwned;
}
