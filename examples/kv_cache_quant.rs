//! KV-cache quantization demo (paper §4.4): run the same generation with
//! FP32, INT8, and INT4 KV caches and compare outputs, perplexity, and
//! memory footprint.
//!
//! ```sh
//! cargo run --release -p atom --example kv_cache_quant
//! ```

use atom::QuantizedKvCache;
use atom_data::{CorpusStyle, Tokenizer};
use atom_nn::kv::Fp32KvCache;
use atom_nn::{eval, zoo, KvStore};
use atom_tensor::ops;

fn main() {
    let model = zoo::trained(zoo::ZooId::Small);
    let config = *model.config();
    let tok = Tokenizer::new();
    let prompt = tok.encode("the falcon hunts from the sky . the falcon is a ");

    // Greedy decode under each cache precision.
    let mut outputs = Vec::new();
    for bits in [32u8, 8, 4, 2] {
        let mut cache: Box<dyn KvStore> = if bits == 32 {
            Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
        } else {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                bits,
            ))
        };
        let mut logits = model.forward(&prompt, cache.as_mut());
        let mut text = Vec::new();
        for _ in 0..32 {
            let next = ops::argmax(logits.row(logits.rows() - 1)) as u16;
            text.push(next);
            logits = model.forward(&[next], cache.as_mut());
        }
        println!("KV {bits:>2}-bit: {:?}", tok.decode(&text));
        outputs.push(text);
    }

    // Perplexity with each cache precision (the Table 3 final-row metric).
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2000)];
    println!("\nwiki perplexity by KV-cache precision:");
    let fp = eval::perplexity(&model, tokens, 96);
    println!("  fp32 : {fp:.3}");
    for bits in [8u8, 4, 2] {
        let ppl = eval::perplexity_with_cache(&model, tokens, 96, &mut || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                bits,
            ))
        });
        println!("  int{bits} : {ppl:.3}  (+{:.3})", ppl - fp);
    }

    // Memory footprint of a 4096-token cache.
    println!("\nKV bytes for a 4096-token context (this model):");
    let fp_bytes = 2 * 4096 * config.kv_dim() * config.layers * 2; // f16 baseline
    println!("  fp16 : {fp_bytes}");
    for bits in [8u8, 4] {
        let mut c = QuantizedKvCache::new(config.layers, config.kv_dim(), config.head_dim(), bits);
        let k = atom_tensor::Matrix::zeros(4096, config.kv_dim());
        for layer in 0..config.layers {
            c.append(layer, &k, &k);
        }
        println!("  int{bits} : {}", c.packed_bytes());
    }
}
