//! Quickstart: quantize a trained model to W4A4 with Atom and compare it
//! against the FP32 reference and the RTN baseline.
//!
//! ```sh
//! cargo run --release -p atom --example quickstart
//! ```
//!
//! The first run trains the model zoo (a few minutes on one core); later
//! runs load the cached checkpoints.

use atom::pipeline::{AtomScheme, Scheme};
use atom::Calibration;
use atom_data::{CorpusStyle, Tokenizer};
use atom_nn::{eval, zoo};
use atom_tensor::SeededRng;

fn main() {
    // 1. A trained Llama-style model with realistic activation outliers.
    let model = zoo::trained(zoo::ZooId::Tiny);
    println!(
        "model: {} ({} parameters, {} linear layers)",
        zoo::ZooId::Tiny.label(),
        model.config().param_count(),
        model.num_linears()
    );

    // 2. Calibrate on 128 random sentences (paper §5.1), collecting the
    //    channel statistics for outlier identification and the Gram
    //    matrices GPTQ needs.
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(128), true, 2);

    // 3. Quantize: Atom W4A4 (mixed-precision outliers, group 16, GPTQ,
    //    INT4 KV-cache) vs plain RTN W4A4.
    let atom = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let rtn = Scheme::Rtn { w_bits: 4, a_bits: 4 }.quantize(&model, &calib);

    // 4. Compare perplexity on held-out wiki text.
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2000)];
    println!("\nwiki perplexity (lower is better):");
    println!("  FP32 reference : {:.3}", eval::perplexity(&model, tokens, 96));
    println!("  Atom W4A4      : {:.3}", atom.perplexity(tokens, 96));
    println!("  RTN  W4A4      : {:.3}", rtn.perplexity(tokens, 96));

    // 5. Generate a little text from both to see the quality difference.
    let tok = Tokenizer::new();
    let prompt = tok.encode("the robin is a ");
    let mut rng = SeededRng::new(0);
    let fp = eval::generate(&model, &prompt, 24, 0.0, &mut rng);
    println!("\ngreedy continuations of \"the robin is a \":");
    println!("  FP32:      {:?}", tok.decode(&fp));
    let atom_out = eval::generate(&atom.model, &prompt, 24, 0.0, &mut rng);
    println!("  Atom W4A4: {:?}", tok.decode(&atom_out));
    let rtn_out = eval::generate(&rtn.model, &prompt, 24, 0.0, &mut rng);
    println!("  RTN  W4A4: {:?}", tok.decode(&rtn_out));
}
