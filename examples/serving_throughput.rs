//! Serving demo: (1) simulate GPU-scale end-to-end throughput across
//! schemes and batch sizes (the Fig. 10 experiment), and (2) actually serve
//! real requests through the CPU engine with an Atom-quantized model and a
//! quantized, paged KV cache.
//!
//! ```sh
//! cargo run --release -p atom-serve --example serving_throughput
//! ```

use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_data::{Tokenizer, WorkloadSpec};
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, MemoryModel, SimScheme};
use atom_nn::zoo;
use atom_serve::engine::CpuEngine;
use atom_serve::ServingSimulator;

fn main() {
    // Part 1: GPU-scale simulation (Fig. 10 regime).
    let hw = HardwareProfile::rtx4090();
    let cfg = LlamaGpuConfig::llama7b();
    let trace = WorkloadSpec::default().generate(96, 11);
    println!("simulated Llama-7B serving on {} ({} requests):", hw.name, trace.len());
    for scheme in SimScheme::all() {
        let mem = MemoryModel::new(cfg, scheme, hw.mem_bytes);
        let batch = mem.max_batch(700).clamp(1, 256);
        let report = ServingSimulator::with_device_memory(cfg, hw, scheme, batch)
            .run(&trace)
            .expect("non-empty trace");
        println!(
            "  {:10}  max batch {:>3}  {:>6.0} tok/s  {:>6.1} ms/token",
            scheme.label(),
            batch,
            report.throughput_tps,
            report.avg_decode_latency_s * 1e3
        );
    }

    // Part 2: real CPU serving with the quantized model.
    println!("\nreal CPU serving with Atom-quantized 7B* and INT4 paged KV:");
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let config = *quantized.model.config();
    let mut engine = CpuEngine::new(
        quantized.model,
        Box::new(move || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                4,
            ))
        }),
        4,    // max batch
        4096, // KV pool tokens
    )
    .expect("valid engine config");

    let tok = Tokenizer::new();
    let prompts = [
        "the robin is a ",
        "to strike a nail , use the ",
        "is the salmon a fish ? ",
        "the lighthouse ",
        "one wolf howls while two wolf",
    ];
    for p in prompts {
        engine.submit(tok.encode(p), 20).expect("prompt fits the pool");
    }
    let start = std::time::Instant::now();
    let completions = engine.run_to_completion().to_vec();
    let elapsed = start.elapsed().as_secs_f64();
    let total_tokens: usize = completions.iter().map(|c| c.tokens.len()).sum();
    for c in &completions {
        println!("  [{}] {:?} -> {:?}", c.id, prompts[c.id], tok.decode(&c.tokens));
    }
    println!(
        "\nserved {} requests / {} tokens in {:.2}s ({:.1} tok/s on one CPU core)",
        completions.len(),
        total_tokens,
        elapsed,
        total_tokens as f64 / elapsed
    );
}
