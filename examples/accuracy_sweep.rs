//! Accuracy sweep: perplexity and zero-shot accuracy across quantization
//! schemes and bit widths on one model — a miniature of Tables 1 and 2.
//!
//! ```sh
//! cargo run --release -p atom --example accuracy_sweep [tiny|small|base|large]
//! ```

use atom::pipeline::{AtomScheme, Scheme};
use atom::Calibration;
use atom_data::{CorpusStyle, TaskSuite, Tokenizer};
use atom_nn::{eval, zoo};

fn main() {
    let id = match std::env::args().nth(1).as_deref() {
        Some("small") => zoo::ZooId::Small,
        Some("base") => zoo::ZooId::Base,
        Some("large") => zoo::ZooId::Large,
        _ => zoo::ZooId::Tiny,
    };
    let model = zoo::trained(id);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(128), true, 2);
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2000)];
    let suite = TaskSuite::generate(15, 7);
    let tok = Tokenizer::new();

    println!("model {}: FP32 reference", id.label());
    let ppl = eval::perplexity(&model, tokens, 96);
    let (_, acc) = eval::zero_shot_row(&model, &suite, &tok);
    println!("  ppl {ppl:7.3}   zero-shot avg {:.1}%", acc * 100.0);

    let schemes = [
        Scheme::Rtn { w_bits: 8, a_bits: 8 },
        Scheme::Rtn { w_bits: 4, a_bits: 4 },
        Scheme::SmoothQuant { w_bits: 8, a_bits: 8 },
        Scheme::SmoothQuant { w_bits: 4, a_bits: 4 },
        Scheme::WeightOnly { w_bits: 4, group: 16 },
        Scheme::Atom(AtomScheme::w4a4()),
        Scheme::Atom(AtomScheme::w3a3()),
        Scheme::Atom(AtomScheme::fp4()),
    ];
    for scheme in schemes {
        let q = scheme.quantize(&model, &calib);
        let ppl = q.perplexity(tokens, 96);
        let (_, acc) = q.zero_shot(&suite, &tok);
        println!(
            "{:22}  ppl {:9.3}   zero-shot avg {:.1}%",
            scheme.label(),
            ppl,
            acc * 100.0
        );
    }
}
